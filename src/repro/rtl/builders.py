"""Netlist constructors for every adder architecture in the paper.

Each builder returns a :class:`~repro.rtl.netlist.Netlist` with input buses
``A`` and ``B`` (width N) and an output bus ``S`` of width N+1 (the MSB is
the carry out, except for architectures that cannot produce one).  The GeAr
builder additionally exposes an ``ERR`` bus with one error-detection flag
per speculative sub-adder (§3.3: an AND of the predicted carry and the
previous sub-adder's carry out).

Wide AND/OR reductions are decomposed into bounded-fan-in trees so both the
LUT-area estimate and the STA see realistic structures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist
from repro.utils.validation import check_pos_int

#: Maximum fan-in used when decomposing reductions into gate trees.  Four
#: keeps one tree level per LUT pair and matches how ISE maps wide gates.
TREE_FANIN = 4


def _tree(netlist: Netlist, op: Op, nets: Sequence[str], group: str = "") -> str:
    """Balanced bounded-fan-in reduction tree over ``nets``."""
    if not nets:
        raise ValueError("reduction tree needs at least one net")
    level = list(nets)
    while len(level) > 1:
        nxt: List[str] = []
        for i in range(0, len(level), TREE_FANIN):
            chunk = level[i : i + TREE_FANIN]
            if len(chunk) == 1:
                nxt.append(chunk[0])
            else:
                nxt.append(netlist.add_gate(op, chunk, group=group))
        level = nxt
    return level[0]


def _ripple_chain(
    netlist: Netlist,
    a_nets: Sequence[str],
    b_nets: Sequence[str],
    cin: Optional[str] = None,
    group: str = "carry",
    p_group: str = "",
    drop_sums: int = 0,
    emit_cout: bool = True,
) -> Tuple[List[Optional[str]], Optional[str]]:
    """Ripple-carry addition over parallel net lists.

    Returns (sum nets LSB first, carry-out net).  The carry gates are tagged
    with ``group`` so the FPGA delay model can ride them on the fast chain.
    ``p_group`` tags the per-bit propagate LUTs: distinct tags keep two
    chains over the same bits from sharing LUTs (each slice's LUT feeds its
    own MUXCY, so physically separate carry chains cannot share them).

    ``drop_sums`` skips building the sum XOR of that many low bits (their
    slots in the returned list are ``None``); GeAr prediction bits and
    ETAII carry generators feed the chain but never observe those sums, and
    building them anyway is exactly the dead logic the lint pass flags.
    ``emit_cout=False`` likewise skips the final bit's carry gates when the
    caller discards the carry out (the returned carry is then ``None``).
    """
    if len(a_nets) != len(b_nets):
        raise ValueError("operand net lists must have equal length")
    sums: List[Optional[str]] = []
    carry = cin
    last = len(a_nets) - 1
    for idx, (a, b) in enumerate(zip(a_nets, b_nets)):
        keep_sum = idx >= drop_sums
        need_carry = emit_cout or idx < last
        # The propagate XOR is the slice LUT; everything else rides the
        # dedicated carry chain (MUXCY/XORCY) and is tagged accordingly so
        # the delay and area models treat it as such.
        if carry is None:
            sums.append(netlist.xor(a, b, group=p_group) if keep_sum else None)
            carry = netlist.and_(a, b, group=group) if need_carry else None
        else:
            p = netlist.xor(a, b, group=p_group) if keep_sum or need_carry else None
            sums.append(netlist.xor(p, carry, group=group) if keep_sum else None)
            if need_carry:
                g = netlist.and_(a, b, group=group)
                chain = netlist.and_(p, carry, group=group)
                carry = netlist.or_(g, chain, group=group)
            else:
                carry = None
    return sums, carry


def build_rca(width: int, name: str = "rca") -> Netlist:
    """N-bit ripple-carry adder; output ``S`` is N+1 bits."""
    check_pos_int("width", width)
    from repro.spec.catalog import exact_spec

    return build_spec(exact_spec(width, "rca", name=name))


def build_cla(width: int, name: str = "cla") -> Netlist:
    """N-bit single-level carry-lookahead adder; output ``S`` is N+1 bits.

    Carries are computed by the flat lookahead expansion
    ``c_{i+1} = g_i | p_i g_{i-1} | ... | p_i..p_0 c_0`` with bounded-fan-in
    trees, so the structure (wide product terms) matches what makes GDA's
    prediction slow on an FPGA.
    """
    check_pos_int("width", width)
    from repro.spec.catalog import exact_spec

    return build_spec(exact_spec(width, "cla", name=name))


def _lookahead_carries(
    nl: Netlist,
    g: Sequence[str],
    p: Sequence[Optional[str]],
    needed: Optional[Sequence[int]] = None,
) -> List[Optional[str]]:
    """Flat CLA carry nets: carries[i] = carry out of bit i (cin = 0).

    Each carry is an independent sum-of-products, so callers that consume
    only some of them (GDA predicts just the block boundary carry; GeAr
    windows discard carries under the prediction field) pass ``needed`` to
    avoid building dead product trees; unrequested slots are ``None``.
    ``p[0]`` is never read — only ``p[j]`` for ``j >= 1`` appears in the
    expansion — so callers may pass ``None`` there.
    """
    width = len(g)
    wanted = set(range(width) if needed is None else needed)
    carries: List[Optional[str]] = []
    for i in range(width):
        if i not in wanted:
            carries.append(None)
            continue
        terms = [g[i]]
        for j in range(i):
            factors = [g[j]] + list(p[j + 1 : i + 1])
            terms.append(_tree(nl, Op.AND, factors))
        carries.append(terms[0] if len(terms) == 1 else _tree(nl, Op.OR, terms))
    return carries


def _prefix_window(
    nl: Netlist,
    a_nets: Sequence[str],
    b_nets: Sequence[str],
    drop_sums: int = 0,
    emit_cout: bool = True,
) -> Tuple[List[Optional[str]], Optional[str]]:
    """Kogge-Stone parallel-prefix addition over parallel net lists.

    log2(N) prefix levels of (generate, propagate) merges.  On ASICs this
    is the classic fast adder; on FPGAs the prefix network maps to generic
    LUTs and loses to the dedicated carry chain — the same effect that
    penalises GDA's CLA prediction (§4.2).

    ``drop_sums`` / ``emit_cout`` behave as in :func:`_ripple_chain`.  A
    prefix network's lanes are independent sum-of-products, so dropping
    sums prunes whole lanes: the backward needs-analysis walks the levels
    in reverse, recording which (level, index) generate *and* propagate
    merges are ever consumed — building the rest is exactly the dead logic
    the lint pass flags.
    """
    if len(a_nets) != len(b_nets):
        raise ValueError("operand net lists must have equal length")
    width = len(a_nets)
    levels: List[int] = []
    dist = 1
    while dist < width:
        levels.append(dist)
        dist <<= 1
    # Final consumers: sum bit i reads gen[i-1]; the carry out reads the
    # top lane.  Walk levels backwards: a merge at (d, i) reads the
    # previous level's gen/prop at i and i-d, and merged propagates feed
    # both later propagate merges and generate merges at the same lane.
    need_gen = {i - 1 for i in range(max(1, drop_sums), width)}
    if emit_cout:
        need_gen.add(width - 1)
    need_prop: set = set()
    plan: List[Tuple[int, set, set]] = []
    for d in reversed(levels):
        gen_m = {i for i in need_gen if i >= d}
        prop_m = {i for i in need_prop if i >= d}
        need_gen |= {i - d for i in gen_m}
        need_prop |= {i - d for i in prop_m} | gen_m
        plan.append((d, gen_m, prop_m))
    plan.reverse()

    base_prop = need_prop | set(range(drop_sums, width))
    gen: Dict[int, str] = {
        i: nl.and_(a_nets[i], b_nets[i]) for i in sorted(need_gen)
    }
    prop: Dict[int, str] = {
        i: nl.xor(a_nets[i], b_nets[i]) for i in sorted(base_prop)
    }
    base = dict(prop)
    for d, gen_m, prop_m in plan:
        new_gen = dict(gen)
        new_prop = dict(prop)
        for i in sorted(gen_m | prop_m):
            # (g, p) ∘ (g', p') = (g | p·g', p·p')
            if i in gen_m:
                new_gen[i] = nl.or_(gen[i], nl.and_(prop[i], gen[i - d]))
            if i in prop_m:
                new_prop[i] = nl.and_(prop[i], prop[i - d])
        gen, prop = new_gen, new_prop
    # gen[i] is now the carry out of bit i (cin = 0).
    sums: List[Optional[str]] = [None] * drop_sums
    for i in range(drop_sums, width):
        sums.append(base[i] if i == 0 else nl.xor(base[i], gen[i - 1]))
    return sums, gen[width - 1] if emit_cout else None


def build_kogge_stone(width: int, name: str = "ksa") -> Netlist:
    """N-bit Kogge-Stone parallel-prefix adder; output ``S`` is N+1 bits.

    See :func:`_prefix_window` for the structure (and why it loses to the
    carry chain on FPGAs).
    """
    check_pos_int("width", width)
    from repro.spec.catalog import exact_spec

    return build_spec(exact_spec(width, "ksa", name=name))


def build_carry_select(width: int, block: int = 4, name: str = "csla") -> Netlist:
    """Carry-select adder: per block, two ripple sums muxed by the carry.

    The first block is a plain ripple chain; each later block computes its
    sum for carry-in 0 and 1 in parallel and selects with the previous
    block's resolved carry, shortening the critical path to one block plus
    a mux chain.
    """
    check_pos_int("width", width)
    check_pos_int("block", block)
    nl = Netlist(name)
    a = nl.add_input_bus("A", width)
    b = nl.add_input_bus("B", width)

    result: List[str] = []
    carry: Optional[str] = None
    for base in range(0, width, block):
        hi = min(base + block, width)
        a_blk, b_blk = a[base:hi], b[base:hi]
        if carry is None:
            sums, carry = _ripple_chain(nl, a_blk, b_blk)
            result.extend(sums)
            continue
        sums0, cout0 = _ripple_chain(nl, a_blk, b_blk, cin=nl.const(0))
        sums1, cout1 = _ripple_chain(nl, a_blk, b_blk, cin=nl.const(1))
        for s0, s1 in zip(sums0, sums1):
            result.append(nl.mux(carry, s0, s1))
        carry = nl.mux(carry, cout0, cout1)
    assert carry is not None
    nl.set_output_bus("S", result + [carry])
    return nl


def build_carry_skip(width: int, block: int = 4, name: str = "cska") -> Netlist:
    """Carry-skip adder: ripple blocks with a propagate-bypass mux each."""
    check_pos_int("width", width)
    check_pos_int("block", block)
    nl = Netlist(name)
    a = nl.add_input_bus("A", width)
    b = nl.add_input_bus("B", width)

    result: List[str] = []
    carry: Optional[str] = None
    for base in range(0, width, block):
        hi = min(base + block, width)
        a_blk, b_blk = a[base:hi], b[base:hi]
        cin = carry
        sums, cout = _ripple_chain(nl, a_blk, b_blk, cin=cin)
        result.extend(sums)
        if cin is None:
            carry = cout
        else:
            # Block propagate: all bits propagate -> bypass the ripple.
            props = [nl.xor(a[j], b[j]) for j in range(base, hi)]
            block_p = _tree(nl, Op.AND, props)
            carry = nl.mux(block_p, cout, cin)
    assert carry is not None
    nl.set_output_bus("S", result + [carry])
    return nl


def _window_sum(netlist: Netlist, a_nets: Sequence[str], b_nets: Sequence[str],
                style: str, drop_sums: int = 0, emit_cout: bool = True,
                cin: Optional[str] = None) -> Tuple[List[Optional[str]], Optional[str]]:
    """Sub-adder implementation selector for speculative windows (§4.4
    remark: the model is not specific to any sub-adder type).

    ``drop_sums`` / ``emit_cout`` behave as in :func:`_ripple_chain`: sum
    bits under the prediction field and unused carry outs are simply not
    built, keeping every generated netlist free of dead logic.  An external
    ``cin`` (the LOA truncation carry, or an ETAII/GDA carry generator's
    output) is only meaningful for a ripple window — the lookahead and
    prefix expansions assume cin = 0.
    """
    if cin is not None and style != "rca":
        raise ValueError("only 'rca' windows accept an external carry-in")
    if style == "rca":
        return _ripple_chain(netlist, a_nets, b_nets, cin=cin,
                             drop_sums=drop_sums, emit_cout=emit_cout)
    if style == "cla":
        n = len(a_nets)
        needed = {i - 1 for i in range(max(1, drop_sums), n)}
        if emit_cout:
            needed.add(n - 1)
        # g[j] / p[j] only appear in the expansions of carries up to the
        # highest requested one; anything above that would be dead logic.
        top = max(needed) if needed else -1
        g: List[Optional[str]] = [
            netlist.and_(x, y) if i <= top else None
            for i, (x, y) in enumerate(zip(a_nets, b_nets))
        ]
        # p[0] only ever feeds sum bit 0 (the lookahead expansion reads
        # p[1:] exclusively), so skip it when that sum is dropped.
        p: List[Optional[str]] = [
            netlist.xor(x, y)
            if (i > 0 and (i <= top or i >= drop_sums)) or (i == 0 and drop_sums == 0)
            else None
            for i, (x, y) in enumerate(zip(a_nets, b_nets))
        ]
        carries = _lookahead_carries(netlist, g, p, needed=sorted(needed))
        sums: List[Optional[str]] = [p[0] if drop_sums == 0 else None]
        for i in range(1, n):
            if i >= drop_sums:
                sums.append(netlist.xor(p[i], carries[i - 1]))
            else:
                sums.append(None)
        return sums, carries[-1] if emit_cout else None
    if style == "ksa":
        return _prefix_window(netlist, a_nets, b_nets,
                              drop_sums=drop_sums, emit_cout=emit_cout)
    raise ValueError(
        f"unknown sub-adder style {style!r}; use 'rca', 'cla' or 'ksa'"
    )


def build_spec(spec: "AdderSpec") -> Netlist:  # noqa: F821
    """Compile an :class:`~repro.spec.ir.AdderSpec` into a netlist.

    This is *the* generic windowed-adder compiler: every speculative family
    (GeAr, ACA-I/II, ETAII, ETAIIM, GDA, LOA, heterogeneous mixes) and every
    exact baseline (RCA, CLA, KSA — a single full-width window) is one walk
    over the spec's windows.  Per window:

    * ``pred == "fused"`` — one sub-adder over ``[low, high]`` whose low
      prediction bits feed the carry chain but produce no sums (GeAr/ACA
      style, Fig. 2);
    * ``pred == "gen_rca"`` — a dedicated ripple carry generator over the
      prediction bits feeds a separate sum unit (ETAII style: the
      duplicated hardware behind Table I's 28-vs-24 LUT gap);
    * ``pred == "gen_cla"`` — a flat lookahead predicts the boundary carry
      (GDA style: the wide product terms behind §4.2's delay penalty).

    ``truncation`` OR-reduces the low bits and injects the LOA carry rule;
    a ``static`` first window generalises it to other fixed gate rules
    (``hoeraa`` swaps the top OR for a half-adder XOR); ``error_detect``
    emits the §3.3 ``ERR`` bus (``cp_i AND co_{i-1}``); a ``rectify``
    stage appends a sparse ripple increment that adds each enabled
    window's flag back at its ``result_low``.  Needs-analysis in the
    sub-adder helpers keeps the output free of dead logic for any window
    mix.
    """
    nl = Netlist(spec.name)
    n = spec.width
    a = nl.add_input_bus("A", n)
    b = nl.add_input_bus("B", n)

    static = spec.static_window
    t = spec.truncation or (static.length if static is not None else 0)
    result: List[Optional[str]] = [None] * n
    for i in range(t):
        if static is not None and static.approx == "hoeraa" and i == t - 1:
            result[i] = nl.xor(a[i], b[i])
        else:
            result[i] = nl.or_(a[i], b[i])
    trunc_cin = nl.and_(a[t - 1], b[t - 1]) if t else None

    windows = spec.windows[1:] if static is not None else spec.windows
    detect = spec.error_detect
    carry_outs: List[Optional[str]] = []
    predicts: List[Optional[str]] = []

    for i, w in enumerate(windows):
        is_last = i == len(windows) - 1
        pred = w.prediction_bits
        if w.pred == "gen_rca" and pred:
            # Dedicated carry generator over the prediction span: its own
            # carry chain, so its propagate LUTs cannot be shared with a
            # sum unit covering the same bits (distinct p_group).
            _, cin = _ripple_chain(nl, a[w.low : w.result_low],
                                   b[w.low : w.result_low],
                                   p_group="carrygen", drop_sums=pred)
        elif w.pred == "gen_cla" and pred:
            g = [nl.and_(a[j], b[j]) for j in range(w.low, w.result_low)]
            # Only the boundary carry is predicted; p[0] never appears in
            # its expansion, and intermediate carries are not consumed.
            p: List[Optional[str]] = [None] + [
                nl.xor(a[j], b[j]) for j in range(w.low + 1, w.result_low)
            ]
            cin = _lookahead_carries(nl, g, p, needed=[pred - 1])[-1]
        else:
            cin = trunc_cin if i == 0 else None
        # Fused windows span the prediction bits themselves; generator
        # windows delegate them and sum only the result field.
        lo, drop = (w.low, pred) if w.pred == "fused" else (w.result_low, 0)
        # A window's carry out is consumed by the §3.3 detector of the next
        # sub-adder (when detection is on) and, for the last window, by the
        # sum MSB; otherwise it is not built at all.
        sums, cout = _window_sum(
            nl, a[lo : w.high + 1], b[lo : w.high + 1], w.arch,
            drop_sums=drop, emit_cout=is_last or detect, cin=cin,
        )
        result[w.result_low : w.result_high + 1] = sums[drop:]
        carry_outs.append(cout)
        if detect and i > 0:
            prop_bits = [nl.xor(a[w.low + j], b[w.low + j]) for j in range(pred)]
            predicts.append(_tree(nl, Op.AND, prop_bits))
        else:
            predicts.append(None)

    err: List[str] = []
    if detect:
        err = [
            nl.and_(predicts[i], carry_outs[i - 1])
            for i in range(1, len(windows))
        ]

    bits: List[Optional[str]] = result + [carry_outs[-1]]
    if spec.rectify is not None:
        # Rectification stage: ripple-add the flag word (each enabled
        # window's ERR flag at its result_low) into the sum.  Between
        # taps the increment is a half-adder chain; the final carry out
        # of bit N is provably never set (rectification only cancels
        # negative miss errors), so it is not built at all.
        taps = {windows[i].result_low: err[i - 1]
                for i in spec.rectified_windows()}
        carry: Optional[str] = None
        for j in range(min(taps), n + 1):
            add = taps.get(j)
            if add is not None and carry is not None:
                p = nl.xor(bits[j], add)
                g = nl.and_(bits[j], add, group="carry")
                bits[j] = nl.xor(p, carry, group="carry")
                if j < n:
                    chain = nl.and_(p, carry, group="carry")
                    carry = nl.or_(g, chain, group="carry")
            elif add is not None or carry is not None:
                inc = add if add is not None else carry
                s = nl.xor(bits[j], inc)
                carry = nl.and_(bits[j], inc, group="carry") if j < n else None
                bits[j] = s

    nl.set_output_bus("S", bits)
    if detect:
        nl.set_output_bus("ERR", err)
    return nl


def build_gear(
    n: int,
    r: int,
    p: int,
    name: str = "gear",
    with_error_detect: bool = True,
    allow_partial: bool = False,
    sub_adder: str = "rca",
) -> Netlist:
    """GeAr(N, R, P) netlist per §3.1 (Fig. 2) — compiled from its spec.

    The first sub-adder is an L-bit chain contributing L result bits;
    every subsequent sub-adder is an L-bit chain whose top R sum bits
    contribute to the result and whose low P bits only predict the carry.
    When ``with_error_detect`` is set, output bus ``ERR`` carries one flag
    per speculative sub-adder: ``cp_i AND co_{i-1}`` (§3.3), where ``cp_i``
    is the AND of the P propagate bits (Eq. 4) and ``co_{i-1}`` the previous
    sub-adder's true carry out.
    """
    from repro.spec.catalog import gear_spec

    return build_spec(gear_spec(n, r, p, allow_partial=allow_partial,
                                arch=sub_adder, error_detect=with_error_detect,
                                name=name))


def build_etaii(n: int, sub_adder_len: int, name: str = "etaii") -> Netlist:
    """ETAII [9] in its native structure: sum units + carry generators.

    Functionally equal to GeAr(N, L/2, L/2) (the §3.1 coverage relation),
    but built the way Zhu et al. describe: the word splits into
    non-overlapping L/2-bit *sum units*, each fed a carry by a separate
    *carry generator* rippling over the L/2 bits below it.  The sum unit
    and the carry generator over the same bits are distinct hardware —
    that duplication is why Table I reports ETAII at 28 LUTs against
    ACA-II's 24 for the same function.
    """
    from repro.spec.catalog import etaii_spec

    return build_spec(etaii_spec(n, sub_adder_len, name=name))


def build_aca1(n: int, sub_adder_len: int, name: str = "aca1") -> Netlist:
    """ACA-I [8]: overlapping sub-adders with one resultant bit each —
    GeAr(N, 1, L−1)."""
    from repro.spec.catalog import aca1_spec

    return build_spec(aca1_spec(n, sub_adder_len, name=name))


def build_aca2(n: int, sub_adder_len: int, name: str = "aca2") -> Netlist:
    """ACA-II [10]: overlapping sub-adders with L/2 resultant bits —
    GeAr(N, L/2, L/2) structurally (unlike ETAII's sum-unit/carry-generator
    split, ACA-II's windows *are* the shared hardware)."""
    from repro.spec.catalog import aca2_spec

    return build_spec(aca2_spec(n, sub_adder_len, name=name))


def build_gda(n: int, mb: int, mc: int, name: str = "gda") -> Netlist:
    """GDA [13] in its uniform-prediction configuration.

    The operands are split into N/M_B non-overlapping blocks added by ripple
    sub-adders.  The carry into each block is predicted by a *carry
    look-ahead* unit over the M_C bits below the block boundary (this CLA is
    what makes GDA slower: §4.2).  Output ``S`` is N+1 bits (the top block's
    carry out is speculative, like the paper's).
    """
    from repro.spec.catalog import gda_spec

    return build_spec(gda_spec(n, mb, mc, enforce_multiple=False, name=name))


def build_gear_corrected(
    n: int,
    r: int,
    p: int,
    name: str = "gear_corrected",
    allow_partial: bool = False,
) -> Netlist:
    """GeAr datapath with the §3.3 correction circuit (Figs. 5 and 6).

    Beyond ``A``/``B`` the module takes two control buses of width k-1:

    * ``EN`` — the paper's error-control select, gating each sub-adder's
      detector;
    * ``CORR`` — the correction state (driven by a register in the real
      design, by the multi-cycle harness here): when bit ``i-1`` is set,
      sub-adder ``i``'s prediction inputs are routed through the OR gates
      with their LSBs forced to 1, which regenerates the missed carry.

    Outputs: ``S`` (N+1 bits) computed under the current correction state,
    and ``ERR`` — the detector flags ``cp_i & co_{i-1} & EN``.  Because the
    detector sees the *muxed* inputs, a corrected sub-adder's propagate
    term collapses and its flag self-clears, so iterating "correct a
    flagged sub-adder, re-evaluate" terminates.

    See :class:`repro.rtl.correction_harness.MultiCycleCorrector` for the
    cycle-accurate wrapper.
    """
    from repro.core.gear import GeArConfig  # local import to avoid a cycle

    cfg = GeArConfig(n, r, p, allow_partial=allow_partial)
    if cfg.k < 2:
        raise ValueError("correction needs at least one speculative sub-adder")
    nl = Netlist(name)
    a = nl.add_input_bus("A", n)
    b = nl.add_input_bus("B", n)
    en = nl.add_input_bus("EN", cfg.k - 1)
    corr = nl.add_input_bus("CORR", cfg.k - 1)

    result: List[str] = [""] * n
    carry_outs: List[str] = []
    flags: List[str] = []

    for i, window in enumerate(cfg.windows()):
        lo, hi = window.low, window.high
        if i == 0:
            sums, cout = _ripple_chain(nl, a[lo : hi + 1], b[lo : hi + 1])
            result[lo : hi + 1] = sums
            carry_outs.append(cout)
            continue

        pred = window.prediction_bits
        select = corr[i - 1]
        a_in: List[str] = []
        b_in: List[str] = []
        for j in range(lo, hi + 1):
            if j == lo:
                # LSB of the prediction field: forced to 1 when correcting.
                forced = nl.const(1)
                a_in.append(nl.mux(select, a[j], forced))
                b_in.append(nl.mux(select, b[j], forced))
            elif j < lo + pred:
                orj = nl.or_(a[j], b[j])
                a_in.append(nl.mux(select, a[j], orj))
                b_in.append(nl.mux(select, b[j], orj))
            else:
                a_in.append(a[j])
                b_in.append(b[j])

        sums, cout = _ripple_chain(nl, a_in, b_in, drop_sums=pred)
        result[window.result_low : window.result_high + 1] = sums[pred:]
        # Detector on the muxed inputs: self-clears once corrected.
        prop_bits = [nl.xor(a_in[j], b_in[j]) for j in range(pred)]
        cp = _tree(nl, Op.AND, prop_bits)
        flags.append(nl.and_(cp, carry_outs[i - 1], en[i - 1]))
        carry_outs.append(cout)

    nl.set_output_bus("S", result + [carry_outs[-1]])
    nl.set_output_bus("ERR", flags)
    return nl


def build_loa(n: int, approx_bits: int, name: str = "loa") -> Netlist:
    """Lower-part OR Adder [12]: OR gates for the low bits, exact RCA above.

    The carry into the exact part is ``a & b`` of the top approximate bit.
    """
    from repro.spec.catalog import loa_spec

    return build_spec(loa_spec(n, approx_bits, name=name))


def _build_gear_cla(n: int, r: int, p: int) -> Netlist:
    """GeAr with carry-lookahead sub-adders (§4.4: model is style-agnostic)."""
    return build_gear(n, r, p, name="gear_cla", sub_adder="cla")


def _catalog_builder(key: str):
    """A ``(width) -> Netlist`` builder for one spec-catalog family."""

    def build(width: int) -> Netlist:
        from repro.spec.catalog import catalog_spec

        return build_spec(catalog_spec(key, width))

    build.__name__ = f"build_{key}"
    build.__doc__ = f"Spec-catalog family {key!r} compiled at the given width."
    return build


def _catalog_builders() -> Dict[str, "Callable[..., Netlist]"]:  # noqa: F821
    from repro.spec.catalog import SPEC_CATALOG

    return {key: _catalog_builder(key) for key in SPEC_CATALOG}


#: Builders addressable by name from the CLI (``gear lint <name> <params>``)
#: and the lint builder matrix.  Values take positional integer parameters.
#: Parameterised family builders come first; every spec-catalog family that
#: is not already covered is added as a width-only builder, so this mapping
#: and :data:`repro.verify.registry` enumerate the same catalog keys.
NAMED_BUILDERS = {
    "rca": build_rca,
    "cla": build_cla,
    "ksa": build_kogge_stone,
    "csla": build_carry_select,
    "cska": build_carry_skip,
    "gear": build_gear,
    "gear_cla": _build_gear_cla,
    "gear_corrected": build_gear_corrected,
    "aca1": build_aca1,
    "aca2": build_aca2,
    "etaii": build_etaii,
    "gda": build_gda,
    "loa": build_loa,
}
for _key, _builder in _catalog_builders().items():
    NAMED_BUILDERS.setdefault(_key, _builder)
del _key, _builder


def build_named(name: str, *params: int) -> Netlist:
    """Construct a registered adder by name, e.g. ``build_named("gear", 12, 4, 4)``.

    Raises :class:`ValueError` for unknown names and :class:`TypeError`
    when the parameter count does not match the builder's signature.
    """
    try:
        builder = NAMED_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown builder {name!r}; known: {', '.join(sorted(NAMED_BUILDERS))}"
        ) from None
    return builder(*params)
