"""Netlist constructors for every adder architecture in the paper.

Each builder returns a :class:`~repro.rtl.netlist.Netlist` with input buses
``A`` and ``B`` (width N) and an output bus ``S`` of width N+1 (the MSB is
the carry out, except for architectures that cannot produce one).  The GeAr
builder additionally exposes an ``ERR`` bus with one error-detection flag
per speculative sub-adder (§3.3: an AND of the predicted carry and the
previous sub-adder's carry out).

Wide AND/OR reductions are decomposed into bounded-fan-in trees so both the
LUT-area estimate and the STA see realistic structures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist
from repro.utils.validation import check_pos_int

#: Maximum fan-in used when decomposing reductions into gate trees.  Four
#: keeps one tree level per LUT pair and matches how ISE maps wide gates.
TREE_FANIN = 4


def _tree(netlist: Netlist, op: Op, nets: Sequence[str], group: str = "") -> str:
    """Balanced bounded-fan-in reduction tree over ``nets``."""
    if not nets:
        raise ValueError("reduction tree needs at least one net")
    level = list(nets)
    while len(level) > 1:
        nxt: List[str] = []
        for i in range(0, len(level), TREE_FANIN):
            chunk = level[i : i + TREE_FANIN]
            if len(chunk) == 1:
                nxt.append(chunk[0])
            else:
                nxt.append(netlist.add_gate(op, chunk, group=group))
        level = nxt
    return level[0]


def _ripple_chain(
    netlist: Netlist,
    a_nets: Sequence[str],
    b_nets: Sequence[str],
    cin: Optional[str] = None,
    group: str = "carry",
    p_group: str = "",
) -> Tuple[List[str], str]:
    """Ripple-carry addition over parallel net lists.

    Returns (sum nets LSB first, carry-out net).  The carry gates are tagged
    with ``group`` so the FPGA delay model can ride them on the fast chain.
    ``p_group`` tags the per-bit propagate LUTs: distinct tags keep two
    chains over the same bits from sharing LUTs (each slice's LUT feeds its
    own MUXCY, so physically separate carry chains cannot share them).
    """
    if len(a_nets) != len(b_nets):
        raise ValueError("operand net lists must have equal length")
    sums: List[str] = []
    carry = cin
    for a, b in zip(a_nets, b_nets):
        # The propagate XOR is the slice LUT; everything else rides the
        # dedicated carry chain (MUXCY/XORCY) and is tagged accordingly so
        # the delay and area models treat it as such.
        p = netlist.xor(a, b, group=p_group)
        g = netlist.and_(a, b, group=group)
        if carry is None:
            sums.append(p)
            carry = g
        else:
            sums.append(netlist.xor(p, carry, group=group))
            chain = netlist.and_(p, carry, group=group)
            carry = netlist.or_(g, chain, group=group)
    assert carry is not None
    return sums, carry


def build_rca(width: int, name: str = "rca") -> Netlist:
    """N-bit ripple-carry adder; output ``S`` is N+1 bits."""
    check_pos_int("width", width)
    nl = Netlist(name)
    a = nl.add_input_bus("A", width)
    b = nl.add_input_bus("B", width)
    sums, cout = _ripple_chain(nl, a, b)
    nl.set_output_bus("S", sums + [cout])
    return nl


def build_cla(width: int, name: str = "cla") -> Netlist:
    """N-bit single-level carry-lookahead adder; output ``S`` is N+1 bits.

    Carries are computed by the flat lookahead expansion
    ``c_{i+1} = g_i | p_i g_{i-1} | ... | p_i..p_0 c_0`` with bounded-fan-in
    trees, so the structure (wide product terms) matches what makes GDA's
    prediction slow on an FPGA.
    """
    check_pos_int("width", width)
    nl = Netlist(name)
    a = nl.add_input_bus("A", width)
    b = nl.add_input_bus("B", width)
    g = [nl.and_(a[i], b[i]) for i in range(width)]
    p = [nl.xor(a[i], b[i]) for i in range(width)]
    carries = _lookahead_carries(nl, g, p)
    sums = [p[0]] + [nl.xor(p[i], carries[i - 1]) for i in range(1, width)]
    nl.set_output_bus("S", sums + [carries[width - 1]])
    return nl


def _lookahead_carries(nl: Netlist, g: Sequence[str], p: Sequence[str]) -> List[str]:
    """Flat CLA carry nets: carries[i] = carry out of bit i (cin = 0)."""
    width = len(g)
    carries: List[str] = []
    for i in range(width):
        terms = [g[i]]
        for j in range(i):
            factors = [g[j]] + list(p[j + 1 : i + 1])
            terms.append(_tree(nl, Op.AND, factors))
        carries.append(terms[0] if len(terms) == 1 else _tree(nl, Op.OR, terms))
    return carries


def build_kogge_stone(width: int, name: str = "ksa") -> Netlist:
    """N-bit Kogge-Stone parallel-prefix adder; output ``S`` is N+1 bits.

    log2(N) prefix levels of (generate, propagate) merges.  On ASICs this
    is the classic fast adder; on FPGAs the prefix network maps to generic
    LUTs and loses to the dedicated carry chain — the same effect that
    penalises GDA's CLA prediction (§4.2).
    """
    check_pos_int("width", width)
    nl = Netlist(name)
    a = nl.add_input_bus("A", width)
    b = nl.add_input_bus("B", width)
    g = [nl.and_(a[i], b[i]) for i in range(width)]
    p = [nl.xor(a[i], b[i]) for i in range(width)]
    prop = list(p)
    gen = list(g)
    dist = 1
    while dist < width:
        new_gen = list(gen)
        new_prop = list(prop)
        for i in range(dist, width):
            # (g, p) ∘ (g', p') = (g | p·g', p·p')
            new_gen[i] = nl.or_(gen[i], nl.and_(prop[i], gen[i - dist]))
            new_prop[i] = nl.and_(prop[i], prop[i - dist])
        gen, prop = new_gen, new_prop
        dist <<= 1
    # gen[i] is now the carry out of bit i (cin = 0).
    sums = [p[0]] + [nl.xor(p[i], gen[i - 1]) for i in range(1, width)]
    nl.set_output_bus("S", sums + [gen[width - 1]])
    return nl


def build_carry_select(width: int, block: int = 4, name: str = "csla") -> Netlist:
    """Carry-select adder: per block, two ripple sums muxed by the carry.

    The first block is a plain ripple chain; each later block computes its
    sum for carry-in 0 and 1 in parallel and selects with the previous
    block's resolved carry, shortening the critical path to one block plus
    a mux chain.
    """
    check_pos_int("width", width)
    check_pos_int("block", block)
    nl = Netlist(name)
    a = nl.add_input_bus("A", width)
    b = nl.add_input_bus("B", width)

    result: List[str] = []
    carry: Optional[str] = None
    for base in range(0, width, block):
        hi = min(base + block, width)
        a_blk, b_blk = a[base:hi], b[base:hi]
        if carry is None:
            sums, carry = _ripple_chain(nl, a_blk, b_blk)
            result.extend(sums)
            continue
        sums0, cout0 = _ripple_chain(nl, a_blk, b_blk, cin=nl.const(0))
        sums1, cout1 = _ripple_chain(nl, a_blk, b_blk, cin=nl.const(1))
        for s0, s1 in zip(sums0, sums1):
            result.append(nl.mux(carry, s0, s1))
        carry = nl.mux(carry, cout0, cout1)
    assert carry is not None
    nl.set_output_bus("S", result + [carry])
    return nl


def build_carry_skip(width: int, block: int = 4, name: str = "cska") -> Netlist:
    """Carry-skip adder: ripple blocks with a propagate-bypass mux each."""
    check_pos_int("width", width)
    check_pos_int("block", block)
    nl = Netlist(name)
    a = nl.add_input_bus("A", width)
    b = nl.add_input_bus("B", width)

    result: List[str] = []
    carry: Optional[str] = None
    for base in range(0, width, block):
        hi = min(base + block, width)
        a_blk, b_blk = a[base:hi], b[base:hi]
        cin = carry
        sums, cout = _ripple_chain(nl, a_blk, b_blk, cin=cin)
        result.extend(sums)
        if cin is None:
            carry = cout
        else:
            # Block propagate: all bits propagate -> bypass the ripple.
            props = [nl.xor(a[j], b[j]) for j in range(base, hi)]
            block_p = _tree(nl, Op.AND, props)
            carry = nl.mux(block_p, cout, cin)
    assert carry is not None
    nl.set_output_bus("S", result + [carry])
    return nl


def _window_sum(netlist: Netlist, a_nets: Sequence[str], b_nets: Sequence[str],
                style: str) -> Tuple[List[str], str]:
    """Sub-adder implementation selector for GeAr windows (§4.4 remark:
    the model is not specific to any sub-adder type)."""
    if style == "rca":
        return _ripple_chain(netlist, a_nets, b_nets)
    if style == "cla":
        g = [netlist.and_(x, y) for x, y in zip(a_nets, b_nets)]
        p = [netlist.xor(x, y) for x, y in zip(a_nets, b_nets)]
        carries = _lookahead_carries(netlist, g, p)
        sums = [p[0]] + [netlist.xor(p[i], carries[i - 1])
                         for i in range(1, len(a_nets))]
        return sums, carries[-1]
    raise ValueError(f"unknown sub-adder style {style!r}; use 'rca' or 'cla'")


def build_gear(
    n: int,
    r: int,
    p: int,
    name: str = "gear",
    with_error_detect: bool = True,
    allow_partial: bool = False,
    sub_adder: str = "rca",
) -> Netlist:
    """GeAr(N, R, P) netlist per §3.1 (Fig. 2).

    The first sub-adder is an L-bit ripple chain contributing L result bits;
    every subsequent sub-adder is an L-bit ripple chain whose top R sum bits
    contribute to the result and whose low P bits only predict the carry.
    When ``with_error_detect`` is set, output bus ``ERR`` carries one flag
    per speculative sub-adder: ``cp_i AND co_{i-1}`` (§3.3), where ``cp_i``
    is the AND of the P propagate bits (Eq. 4) and ``co_{i-1}`` the previous
    sub-adder's true carry out.
    """
    from repro.core.gear import GeArConfig  # local import to avoid a cycle

    cfg = GeArConfig(n, r, p, allow_partial=allow_partial)
    nl = Netlist(name)
    a = nl.add_input_bus("A", n)
    b = nl.add_input_bus("B", n)

    result: List[str] = [""] * n
    carry_outs: List[str] = []
    predicts: List[str] = []

    for i, window in enumerate(cfg.windows()):
        lo, hi = window.low, window.high
        sums, cout = _window_sum(nl, a[lo : hi + 1], b[lo : hi + 1], sub_adder)
        carry_outs.append(cout)
        if i == 0:
            result[lo : hi + 1] = sums
            predicts.append(nl.const(0))  # first sub-adder predicts nothing
        else:
            pred = window.prediction_bits
            result[window.result_low : window.result_high + 1] = sums[pred:]
            prop_bits = [nl.xor(a[lo + j], b[lo + j]) for j in range(pred)]
            predicts.append(_tree(nl, Op.AND, prop_bits))

    nl.set_output_bus("S", result + [carry_outs[-1]])
    if with_error_detect and cfg.k > 1:
        err = [
            nl.and_(predicts[i], carry_outs[i - 1])
            for i in range(1, cfg.k)
        ]
        nl.set_output_bus("ERR", err)
    return nl


def build_etaii(n: int, sub_adder_len: int, name: str = "etaii") -> Netlist:
    """ETAII [9] in its native structure: sum units + carry generators.

    Functionally equal to GeAr(N, L/2, L/2) (the §3.1 coverage relation),
    but built the way Zhu et al. describe: the word splits into
    non-overlapping L/2-bit *sum units*, each fed a carry by a separate
    *carry generator* rippling over the L/2 bits below it.  The sum unit
    and the carry generator over the same bits are distinct hardware —
    that duplication is why Table I reports ETAII at 28 LUTs against
    ACA-II's 24 for the same function.
    """
    if sub_adder_len % 2 != 0:
        raise ValueError("ETAII sub-adder length must be even")
    half = sub_adder_len // 2
    if n % half != 0:
        raise ValueError(
            f"ETAII needs N divisible by the segment size {half}, got {n}"
        )
    nl = Netlist(name)
    a = nl.add_input_bus("A", n)
    b = nl.add_input_bus("B", n)

    result: List[str] = []
    cout: Optional[str] = None
    for base in range(0, n, half):
        hi = base + half
        if base == 0:
            cin = None
        else:
            # Dedicated carry generator over the previous segment: its own
            # carry chain, so its propagate LUTs cannot be shared with the
            # sum unit covering the same bits (distinct p_group).
            lo = base - half
            _, cin = _ripple_chain(nl, a[lo:base], b[lo:base],
                                   p_group="carrygen")
        sums, cout = _ripple_chain(nl, a[base:hi], b[base:hi], cin=cin)
        result.extend(sums)
    assert cout is not None
    nl.set_output_bus("S", result + [cout])
    return nl


def build_aca1(n: int, sub_adder_len: int, name: str = "aca1") -> Netlist:
    """ACA-I [8]: overlapping sub-adders with one resultant bit each —
    GeAr(N, 1, L−1)."""
    return build_gear(n, 1, sub_adder_len - 1, name=name)


def build_aca2(n: int, sub_adder_len: int, name: str = "aca2") -> Netlist:
    """ACA-II [10]: overlapping sub-adders with L/2 resultant bits —
    GeAr(N, L/2, L/2) structurally (unlike ETAII's sum-unit/carry-generator
    split, ACA-II's windows *are* the shared hardware)."""
    if sub_adder_len % 2 != 0:
        raise ValueError("ACA-II needs an even sub-adder length")
    half = sub_adder_len // 2
    return build_gear(n, half, half, name=name)


def build_gda(n: int, mb: int, mc: int, name: str = "gda") -> Netlist:
    """GDA [13] in its uniform-prediction configuration.

    The operands are split into N/M_B non-overlapping blocks added by ripple
    sub-adders.  The carry into each block is predicted by a *carry
    look-ahead* unit over the M_C bits below the block boundary (this CLA is
    what makes GDA slower: §4.2).  Output ``S`` is N+1 bits (the top block's
    carry out is speculative, like the paper's).
    """
    check_pos_int("n", n)
    check_pos_int("mb", mb)
    check_pos_int("mc", mc)
    if n % mb != 0:
        raise ValueError(f"GDA needs N divisible by M_B, got N={n}, M_B={mb}")
    if mc > n - mb:
        raise ValueError(f"M_C={mc} exceeds available lower bits for N={n}, M_B={mb}")

    nl = Netlist(name)
    a = nl.add_input_bus("A", n)
    b = nl.add_input_bus("B", n)

    result: List[str] = []
    last_cout = None
    for base in range(0, n, mb):
        if base == 0:
            cin = None
        else:
            lo = max(0, base - mc)
            g = [nl.and_(a[j], b[j]) for j in range(lo, base)]
            p = [nl.xor(a[j], b[j]) for j in range(lo, base)]
            cin = _lookahead_carries(nl, g, p)[-1]
        sums, last_cout = _ripple_chain(nl, a[base : base + mb], b[base : base + mb], cin=cin)
        result.extend(sums)
    assert last_cout is not None
    nl.set_output_bus("S", result + [last_cout])
    return nl


def build_gear_corrected(
    n: int,
    r: int,
    p: int,
    name: str = "gear_corrected",
    allow_partial: bool = False,
) -> Netlist:
    """GeAr datapath with the §3.3 correction circuit (Figs. 5 and 6).

    Beyond ``A``/``B`` the module takes two control buses of width k-1:

    * ``EN`` — the paper's error-control select, gating each sub-adder's
      detector;
    * ``CORR`` — the correction state (driven by a register in the real
      design, by the multi-cycle harness here): when bit ``i-1`` is set,
      sub-adder ``i``'s prediction inputs are routed through the OR gates
      with their LSBs forced to 1, which regenerates the missed carry.

    Outputs: ``S`` (N+1 bits) computed under the current correction state,
    and ``ERR`` — the detector flags ``cp_i & co_{i-1} & EN``.  Because the
    detector sees the *muxed* inputs, a corrected sub-adder's propagate
    term collapses and its flag self-clears, so iterating "correct a
    flagged sub-adder, re-evaluate" terminates.

    See :class:`repro.rtl.correction_harness.MultiCycleCorrector` for the
    cycle-accurate wrapper.
    """
    from repro.core.gear import GeArConfig  # local import to avoid a cycle

    cfg = GeArConfig(n, r, p, allow_partial=allow_partial)
    if cfg.k < 2:
        raise ValueError("correction needs at least one speculative sub-adder")
    nl = Netlist(name)
    a = nl.add_input_bus("A", n)
    b = nl.add_input_bus("B", n)
    en = nl.add_input_bus("EN", cfg.k - 1)
    corr = nl.add_input_bus("CORR", cfg.k - 1)

    result: List[str] = [""] * n
    carry_outs: List[str] = []
    flags: List[str] = []

    for i, window in enumerate(cfg.windows()):
        lo, hi = window.low, window.high
        if i == 0:
            sums, cout = _ripple_chain(nl, a[lo : hi + 1], b[lo : hi + 1])
            result[lo : hi + 1] = sums
            carry_outs.append(cout)
            continue

        pred = window.prediction_bits
        select = corr[i - 1]
        a_in: List[str] = []
        b_in: List[str] = []
        for j in range(lo, hi + 1):
            if j == lo:
                # LSB of the prediction field: forced to 1 when correcting.
                forced = nl.const(1)
                a_in.append(nl.mux(select, a[j], forced))
                b_in.append(nl.mux(select, b[j], forced))
            elif j < lo + pred:
                orj = nl.or_(a[j], b[j])
                a_in.append(nl.mux(select, a[j], orj))
                b_in.append(nl.mux(select, b[j], orj))
            else:
                a_in.append(a[j])
                b_in.append(b[j])

        sums, cout = _ripple_chain(nl, a_in, b_in)
        result[window.result_low : window.result_high + 1] = sums[pred:]
        # Detector on the muxed inputs: self-clears once corrected.
        prop_bits = [nl.xor(a_in[j], b_in[j]) for j in range(pred)]
        cp = _tree(nl, Op.AND, prop_bits)
        flags.append(nl.and_(cp, carry_outs[i - 1], en[i - 1]))
        carry_outs.append(cout)

    nl.set_output_bus("S", result + [carry_outs[-1]])
    nl.set_output_bus("ERR", flags)
    return nl


def build_loa(n: int, approx_bits: int, name: str = "loa") -> Netlist:
    """Lower-part OR Adder [12]: OR gates for the low bits, exact RCA above.

    The carry into the exact part is ``a & b`` of the top approximate bit.
    """
    check_pos_int("n", n)
    if not 0 <= approx_bits < n:
        raise ValueError(f"approx_bits must be in [0, {n}), got {approx_bits}")
    nl = Netlist(name)
    a = nl.add_input_bus("A", n)
    b = nl.add_input_bus("B", n)
    low = [nl.or_(a[i], b[i]) for i in range(approx_bits)]
    cin = nl.and_(a[approx_bits - 1], b[approx_bits - 1]) if approx_bits else None
    high, cout = _ripple_chain(nl, a[approx_bits:], b[approx_bits:], cin=cin)
    nl.set_output_bus("S", low + high + [cout])
    return nl
