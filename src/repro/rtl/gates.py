"""Gate primitives for the netlist substrate.

Only simple, synthesis-friendly primitives are modelled; everything the
adder generators need (full adders, carry-lookahead blocks, correction
muxes) is built from these in :mod:`repro.rtl.builders`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class Op(enum.Enum):
    """Primitive gate operations."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    MUX = "mux"  # inputs: (sel, d0, d1) -> d1 if sel else d0


#: Required input count per op; ``None`` means variadic (>= 2).
GATE_ARITY: Dict[Op, Optional[int]] = {
    Op.INPUT: 0,
    Op.CONST0: 0,
    Op.CONST1: 0,
    Op.BUF: 1,
    Op.NOT: 1,
    Op.AND: None,
    Op.OR: None,
    Op.XOR: None,
    Op.NAND: None,
    Op.NOR: None,
    Op.XNOR: None,
    Op.MUX: 3,
}

#: Ops that evaluate as an associative reduction.
VARIADIC_OPS = frozenset(op for op, arity in GATE_ARITY.items() if arity is None)


@dataclass(frozen=True)
class Gate:
    """A single gate driving one net.

    Attributes:
        output: name of the net this gate drives (unique per netlist).
        op: primitive operation.
        inputs: driven-net names, in operand order (for MUX: sel, d0, d1).
        group: free-form tag used by delay models to distinguish structures
            (e.g. ``"carry"`` for dedicated FPGA carry-chain logic).
    """

    output: str
    op: Op
    inputs: Tuple[str, ...] = field(default=())
    group: str = ""

    def __post_init__(self) -> None:
        arity = GATE_ARITY[self.op]
        if arity is None:
            if len(self.inputs) < 2:
                raise ValueError(
                    f"{self.op.value} gate '{self.output}' needs >= 2 inputs, "
                    f"got {len(self.inputs)}"
                )
        elif len(self.inputs) != arity:
            raise ValueError(
                f"{self.op.value} gate '{self.output}' needs exactly {arity} "
                f"inputs, got {len(self.inputs)}"
            )

    @property
    def is_source(self) -> bool:
        """True for gates with no inputs (primary inputs and constants)."""
        return GATE_ARITY[self.op] == 0
