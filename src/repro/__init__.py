"""repro — reproduction of the GeAr accuracy-configurable adder (DAC 2015).

Quickstart::

    from repro import GeArAdder, ErrorCorrector

    adder = GeArAdder.from_params(n=12, r=4, p=4)   # Fig. 3 configuration
    adder.add(0b101010101010, 0b010101010101)       # approximate sum
    adder.error_probability()                       # analytic, §3.2
    ErrorCorrector(adder).add(4095, 1).value        # exact via §3.3 recovery

Package map:

* ``repro.core`` — GeAr model, error probability, correction, design space
* ``repro.adders`` — RCA, CLA, ACA-I/II, ETAI/II/IIM, GDA, LOA baselines
* ``repro.rtl`` — gate-level netlists, STA, LUT estimation, Verilog I/O
* ``repro.metrics`` — ED/MED/NED/ACC/MAA metrics, exhaustive evaluation
* ``repro.timing`` — FPGA characterisation and Table-IV execution model
* ``repro.apps`` — Image Integral, SAD, LPF kernels on synthetic images
* ``repro.analysis`` — sweeps, Pareto fronts, table rendering
"""

from repro.adders import (
    AccuracyConfigurableAdder,
    AdderModel,
    AlmostCorrectAdder,
    CarryLookaheadAdder,
    ErrorTolerantAdderI,
    ErrorTolerantAdderII,
    ErrorTolerantAdderIIM,
    GracefullyDegradingAdder,
    LowerPartOrAdder,
    RippleCarryAdder,
)
from repro.core import (
    ErrorCorrector,
    GeArAdder,
    GeArConfig,
    accuracy_percentage,
    error_probability,
    error_probability_exact,
)

__version__ = "1.0.0"

__all__ = [
    "AdderModel",
    "RippleCarryAdder",
    "CarryLookaheadAdder",
    "AlmostCorrectAdder",
    "AccuracyConfigurableAdder",
    "ErrorTolerantAdderI",
    "ErrorTolerantAdderII",
    "ErrorTolerantAdderIIM",
    "GracefullyDegradingAdder",
    "LowerPartOrAdder",
    "GeArAdder",
    "GeArConfig",
    "ErrorCorrector",
    "accuracy_percentage",
    "error_probability",
    "error_probability_exact",
    "__version__",
]
