"""Confidence intervals for Monte-Carlo error-rate estimates.

Table III compares a model against a 10 000-pattern simulation; whether a
gap is meaningful depends on the sampling error, which the paper leaves
implicit.  This module makes it explicit with the Wilson score interval
(well-behaved at the tiny probabilities approximate adders produce, unlike
the normal approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_nonneg_int, check_pos_int

#: z for a 95 % two-sided interval.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class Interval:
    """A (lower, upper) confidence interval for a proportion."""

    lower: float
    upper: float

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower


def wilson_interval(successes: int, trials: int, z: float = Z_95) -> Interval:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: observed event count (e.g. erroneous additions).
        trials: sample size.
        z: normal quantile (default 95 %).
    """
    check_nonneg_int("successes", successes)
    check_pos_int("trials", trials)
    if successes > trials:
        raise ValueError(f"successes {successes} exceed trials {trials}")
    if z <= 0:
        raise ValueError(f"z must be positive, got {z}")
    p_hat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p_hat + z2 / (2 * trials)) / denom
    spread = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z2 / (4 * trials * trials))
        / denom
    )
    lower = 0.0 if successes == 0 else max(0.0, centre - spread)
    upper = 1.0 if successes == trials else min(1.0, centre + spread)
    return Interval(lower=lower, upper=upper)


def estimate_consistent_with(
    measured_rate: float,
    trials: int,
    model_probability: float,
    z: float = Z_95,
) -> bool:
    """Is a measured rate statistically consistent with a model value?

    Builds the Wilson interval around the measurement and checks the model
    value lies inside — the test every Table III row should pass.
    """
    successes = int(round(measured_rate * trials))
    return model_probability in wilson_interval(successes, trials, z=z)


def required_samples(probability: float, relative_precision: float,
                     z: float = Z_95) -> int:
    """Samples needed to estimate ``probability`` to ± relative precision.

    Normal-approximation sizing: n ≈ z²·(1-p) / (p·ε²).  Useful for
    choosing simulation lengths: verifying 0.18 % to ±10 % needs ~210k
    patterns — far beyond the paper's 10 000 (which explains the noise in
    its simulated column at small probabilities).
    """
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability}")
    if not 0.0 < relative_precision < 1.0:
        raise ValueError(
            f"relative_precision must be in (0, 1), got {relative_precision}"
        )
    n = z * z * (1.0 - probability) / (probability * relative_precision ** 2)
    return int(math.ceil(n))
