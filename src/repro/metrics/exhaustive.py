"""Exhaustive evaluation over every operand pair (small widths).

For widths up to ~12 bits the full 2^{2N} input space is tractable; these
helpers ground-truth the analytic error model and the Monte-Carlo paths
(every unit test of an invariant ultimately leans on one of these).

Both helpers route through :mod:`repro.engine` since the engine redesign:
the operand grid is split into canonical row-block shards, evaluated
serially or in parallel, optionally cached, and merged in shard order.
``chunk_rows`` survives as an execution-batching hint — it groups shards
into worker tasks and never changes the result.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.adders.base import AdderModel
from repro.metrics.error_metrics import TABLE1_MAA_THRESHOLDS, ErrorStats
from repro.utils.validation import check_pos_int

#: Widths above this raise instead of silently grinding for hours.
MAX_EXHAUSTIVE_WIDTH = 14


def _check_width(width: int) -> None:
    if width > MAX_EXHAUSTIVE_WIDTH:
        raise ValueError(
            f"width {width} too large for exhaustive evaluation "
            f"(max {MAX_EXHAUSTIVE_WIDTH}); sample through "
            "repro.engine.evaluate(mode='monte_carlo') instead"
        )


def exhaustive_stats(
    adder: AdderModel,
    maa_thresholds: Sequence[float] = TABLE1_MAA_THRESHOLDS,
    chunk_rows: int = 256,
    engine: Optional["object"] = None,
) -> ErrorStats:
    """Full :class:`ErrorStats` over the complete input space."""
    check_pos_int("chunk_rows", chunk_rows)
    _check_width(adder.width)
    from repro.engine import EvalRequest, evaluate

    return evaluate(
        EvalRequest.exhaustive(adder, maa_thresholds=tuple(maa_thresholds),
                               chunk=chunk_rows),
        engine=engine,
    ).stats


def exhaustive_error_probability(adder: AdderModel, chunk_rows: int = 256) -> float:
    """Exact fraction of operand pairs the adder gets wrong."""
    return exhaustive_stats(adder, chunk_rows=chunk_rows).error_rate
