"""Exhaustive evaluation over every operand pair (small widths).

For widths up to ~12 bits the full 2^{2N} input space is tractable; these
helpers ground-truth the analytic error model and the Monte-Carlo paths
(every unit test of an invariant ultimately leans on one of these).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.adders.base import AdderModel
from repro.metrics.error_metrics import (
    TABLE1_MAA_THRESHOLDS,
    ErrorStats,
    compute_error_stats,
)

#: Widths above this raise instead of silently grinding for hours.
MAX_EXHAUSTIVE_WIDTH = 14


def _all_pairs(width: int, chunk_rows: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    size = 1 << width
    values = np.arange(size, dtype=np.int64)
    for start in range(0, size, chunk_rows):
        rows = values[start : start + chunk_rows]
        a = np.repeat(rows, size)
        b = np.tile(values, len(rows))
        yield a, b


def _check_width(width: int) -> None:
    if width > MAX_EXHAUSTIVE_WIDTH:
        raise ValueError(
            f"width {width} too large for exhaustive evaluation "
            f"(max {MAX_EXHAUSTIVE_WIDTH}); use monte_carlo_stats instead"
        )


def exhaustive_error_probability(adder: AdderModel, chunk_rows: int = 256) -> float:
    """Exact fraction of operand pairs the adder gets wrong."""
    _check_width(adder.width)
    errors = 0
    total = 0
    for a, b in _all_pairs(adder.width, chunk_rows):
        errors += int(np.count_nonzero(adder.add(a, b) != (a + b)))
        total += a.size
    return errors / total


def exhaustive_stats(
    adder: AdderModel,
    maa_thresholds: Sequence[float] = TABLE1_MAA_THRESHOLDS,
    chunk_rows: int = 256,
) -> ErrorStats:
    """Full :class:`ErrorStats` over the complete input space."""
    _check_width(adder.width)
    size = 1 << adder.width
    total = size * size
    sum_ed = 0.0
    sum_red = 0.0
    sum_amp = 0.0
    sum_inf = 0.0
    err_count = 0
    max_ed = 0
    hits = {t: 0.0 for t in maa_thresholds}
    bound = None
    for a, b in _all_pairs(adder.width, chunk_rows):
        stats = compute_error_stats(adder, a, b, maa_thresholds=maa_thresholds)
        n = a.size
        sum_ed += stats.med * n
        sum_red += stats.mred * n
        sum_amp += stats.acc_amp_avg * n
        sum_inf += stats.acc_inf_avg * n
        err_count += int(round(stats.error_rate * n))
        max_ed = max(max_ed, stats.max_ed_observed)
        for t in maa_thresholds:
            hits[t] += stats.maa_acceptance[t] / 100.0 * n
        bound = stats.max_ed_bound
    d_max = bound if bound else (1 << adder.width)
    return ErrorStats(
        samples=total,
        error_rate=err_count / total,
        med=sum_ed / total,
        ned=(sum_ed / total) / d_max,
        mred=sum_red / total,
        max_ed_observed=max_ed,
        max_ed_bound=bound,
        acc_amp_avg=sum_amp / total,
        acc_inf_avg=sum_inf / total,
        maa_acceptance={t: hits[t] / total * 100.0 for t in maa_thresholds},
    )
