"""Error-spectrum analysis: *where* and *how big* the errors are.

MED/NED compress the error behaviour to one number; the spectrum keeps the
structure that matters for application tuning:

* the PMF of error magnitudes (always sums of powers of two for windowed
  adders — each term one missed carry, minus wrap cancellations),
* per-window attribution: which speculative sub-adder caused how much of
  the total error mass (this is what justifies MSB-first selective
  correction in the §3.3 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.adders.base import WindowedSpeculativeAdder
from repro.utils.bitvec import mask
from repro.utils.distributions import OperandDistribution, UniformOperands
from repro.utils.validation import check_pos_int


@dataclass(frozen=True)
class ErrorSpectrum:
    """Measured error structure of a windowed speculative adder."""

    adder_name: str
    samples: int
    magnitude_pmf: Dict[int, float]
    window_miss_rate: List[float]
    window_error_mass: List[float]

    @property
    def error_rate(self) -> float:
        return 1.0 - self.magnitude_pmf.get(0, 0.0)

    @property
    def med(self) -> float:
        return sum(mag * p for mag, p in self.magnitude_pmf.items())

    def dominant_window(self) -> Optional[int]:
        """Index (1-based speculative) of the window with most error mass."""
        if not any(self.window_error_mass):
            return None
        return int(np.argmax(self.window_error_mass)) + 1


def error_spectrum(
    adder: WindowedSpeculativeAdder,
    samples: int = 100_000,
    seed: int = 2015,
    distribution: Optional[OperandDistribution] = None,
) -> ErrorSpectrum:
    """Monte-Carlo error spectrum of a windowed adder.

    Window attribution uses the exact miss indicator per window (true carry
    into the window differs from its local speculation); each miss of
    window *i* contributes ``2^{result_low_i}`` of (pre-cancellation) error
    mass.
    """
    check_pos_int("samples", samples)
    dist = distribution or UniformOperands(adder.width)
    a, b = dist.sample_pairs(samples, seed=seed)
    exact = a + b
    approx = np.asarray(adder.add(a, b))
    err = exact - approx

    values, counts = np.unique(err, return_counts=True)
    pmf = {int(v): float(c) / samples for v, c in zip(values, counts)}

    miss_rates: List[float] = []
    masses: List[float] = []
    for w in adder.windows[1:]:
        if w.low == 0:
            miss_rates.append(0.0)
            masses.append(0.0)
            continue
        pred = w.prediction_bits
        prop = ((a >> w.low) ^ (b >> w.low)) & mask(pred)
        all_prop = prop == mask(pred)
        carry_in = (((a & mask(w.low)) + (b & mask(w.low))) >> w.low) & 1
        miss = all_prop & (carry_in == 1)
        rate = float(np.mean(miss))
        miss_rates.append(rate)
        masses.append(rate * float(1 << w.result_low))
    return ErrorSpectrum(
        adder_name=adder.name,
        samples=samples,
        magnitude_pmf=pmf,
        window_miss_rate=miss_rates,
        window_error_mass=masses,
    )


def spectrum_table(spectrum: ErrorSpectrum, top: int = 10) -> str:
    """Human-readable summary of the largest error magnitudes."""
    from repro.analysis.tables import format_table

    nonzero = [(m, p) for m, p in sorted(spectrum.magnitude_pmf.items())
               if m != 0]
    nonzero.sort(key=lambda item: item[1], reverse=True)
    rows = [(mag, f"{p:.6f}") for mag, p in nonzero[:top]]
    return format_table(
        ["|error|", "probability"],
        rows,
        title=(
            f"Error spectrum of {spectrum.adder_name}: rate "
            f"{spectrum.error_rate:.5f}, MED {spectrum.med:.4f}"
        ),
    )
