"""Monte-Carlo evaluation harness (the paper's §4.4 simulation protocol).

The paper verifies its error model by simulating 10 000 uniformly random
input patterns per configuration (Table III).  Since the engine redesign
these helpers are thin, *deprecated* wrappers over
:mod:`repro.engine` — build an :class:`~repro.engine.EvalRequest` and call
:func:`repro.engine.evaluate` (or an :class:`~repro.engine.Engine`
directly) in new code.  The wrappers keep their historical signatures and
now inherit the engine's guarantees: per-shard seed streams spawned with
``numpy.random.SeedSequence``, so results are bit-identical at any worker
count and chunking.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.adders.base import AdderModel
from repro.metrics.error_metrics import TABLE1_MAA_THRESHOLDS, ErrorStats
from repro.utils.distributions import OperandDistribution
from repro.utils.validation import check_pos_int

#: Sample count used by the paper for Table III.
PAPER_SAMPLE_COUNT = 10_000


@dataclass
class SimulationReport:
    """Measured-vs-analytic comparison for one adder configuration."""

    adder_name: str
    samples: int
    measured_error_probability: float
    analytic_error_probability: Optional[float]

    @property
    def absolute_gap(self) -> Optional[float]:
        if self.analytic_error_probability is None:
            return None
        return abs(self.measured_error_probability - self.analytic_error_probability)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is a deprecated alias; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def simulate_error_probability(
    adder: AdderModel,
    samples: int = PAPER_SAMPLE_COUNT,
    seed: Optional[int] = 2015,
    distribution: Optional[OperandDistribution] = None,
) -> SimulationReport:
    """Fraction of erroneous additions over random operands (Table III).

    .. deprecated:: route new code through :func:`repro.engine.evaluate`
       with ``mode="monte_carlo"``; this wrapper remains for callers of
       the historical signature.
    """
    _deprecated("simulate_error_probability",
                "repro.engine.evaluate(EvalRequest(mode='monte_carlo'))")
    check_pos_int("samples", samples)
    from repro.engine import EvalRequest, evaluate

    result = evaluate(EvalRequest(
        adder=adder, mode="monte_carlo", samples=samples, seed=seed,
        distribution=distribution,
    ))
    return SimulationReport(
        adder_name=adder.name,
        samples=samples,
        measured_error_probability=result.stats.error_rate,
        analytic_error_probability=adder.error_probability(),
    )


def monte_carlo_stats(
    adder: AdderModel,
    samples: int = PAPER_SAMPLE_COUNT,
    seed: Optional[int] = 2015,
    distribution: Optional[OperandDistribution] = None,
    maa_thresholds: Sequence[float] = TABLE1_MAA_THRESHOLDS,
    chunk: int = 1 << 20,
) -> ErrorStats:
    """Full :class:`ErrorStats` over random operands.

    .. deprecated:: route new code through :func:`repro.engine.evaluate`;
       ``chunk`` is now an execution-batching hint only and never changes
       the result (shard granularity is the engine's canonical
       ``shard_samples``).
    """
    _deprecated("monte_carlo_stats",
                "repro.engine.evaluate(EvalRequest(mode='monte_carlo'))")
    check_pos_int("samples", samples)
    check_pos_int("chunk", chunk)
    from repro.engine import EvalRequest, evaluate

    return evaluate(EvalRequest(
        adder=adder, mode="monte_carlo", samples=samples, seed=seed,
        distribution=distribution, maa_thresholds=tuple(maa_thresholds),
        chunk=chunk,
    )).stats
