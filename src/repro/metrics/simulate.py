"""Monte-Carlo evaluation harness (the paper's §4.4 simulation protocol).

The paper verifies its error model by simulating 10 000 uniformly random
input patterns per configuration (Table III).  :func:`simulate_error_probability`
reproduces exactly that protocol; :func:`monte_carlo_stats` generalises it
to every metric and any operand distribution, with chunking so that very
large sample counts stay within memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.adders.base import AdderModel
from repro.metrics.error_metrics import (
    TABLE1_MAA_THRESHOLDS,
    ErrorStats,
    compute_error_stats,
)
from repro.utils.distributions import OperandDistribution, UniformOperands
from repro.utils.validation import check_pos_int

#: Sample count used by the paper for Table III.
PAPER_SAMPLE_COUNT = 10_000


@dataclass
class SimulationReport:
    """Measured-vs-analytic comparison for one adder configuration."""

    adder_name: str
    samples: int
    measured_error_probability: float
    analytic_error_probability: Optional[float]

    @property
    def absolute_gap(self) -> Optional[float]:
        if self.analytic_error_probability is None:
            return None
        return abs(self.measured_error_probability - self.analytic_error_probability)


def simulate_error_probability(
    adder: AdderModel,
    samples: int = PAPER_SAMPLE_COUNT,
    seed: Optional[int] = 2015,
    distribution: Optional[OperandDistribution] = None,
) -> SimulationReport:
    """Fraction of erroneous additions over random operands (Table III).

    Args:
        adder: adder under test.
        samples: input patterns to draw (paper: 10 000).
        seed: RNG seed; the default pins the paper-reproduction runs.
        distribution: operand distribution (default: uniform, as in §4.4).
    """
    check_pos_int("samples", samples)
    dist = distribution or UniformOperands(adder.width)
    a, b = dist.sample_pairs(samples, seed=seed)
    errors = adder.add(a, b) != adder.add_exact(a, b)
    return SimulationReport(
        adder_name=adder.name,
        samples=samples,
        measured_error_probability=float(np.mean(errors)),
        analytic_error_probability=adder.error_probability(),
    )


def monte_carlo_stats(
    adder: AdderModel,
    samples: int = PAPER_SAMPLE_COUNT,
    seed: Optional[int] = 2015,
    distribution: Optional[OperandDistribution] = None,
    maa_thresholds: Sequence[float] = TABLE1_MAA_THRESHOLDS,
    chunk: int = 1 << 20,
) -> ErrorStats:
    """Full :class:`ErrorStats` over random operands, chunked for memory."""
    check_pos_int("samples", samples)
    check_pos_int("chunk", chunk)
    dist = distribution or UniformOperands(adder.width)
    rng = np.random.default_rng(seed)

    if samples <= chunk:
        a, b = dist.sample(samples, rng)
        return compute_error_stats(adder, a, b, maa_thresholds=maa_thresholds)

    # Streaming accumulation for large runs.
    remaining = samples
    total = 0
    bound = None
    sum_ed = 0.0
    sum_red = 0.0
    sum_amp = 0.0
    sum_inf = 0.0
    err_count = 0
    max_ed = 0
    amp_hits = {t: 0 for t in maa_thresholds}
    while remaining > 0:
        n = min(chunk, remaining)
        remaining -= n
        a, b = dist.sample(n, rng)
        stats = compute_error_stats(adder, a, b, maa_thresholds=maa_thresholds)
        sum_ed += stats.med * n
        sum_red += stats.mred * n
        sum_amp += stats.acc_amp_avg * n
        sum_inf += stats.acc_inf_avg * n
        err_count += int(round(stats.error_rate * n))
        max_ed = max(max_ed, stats.max_ed_observed)
        for t in maa_thresholds:
            amp_hits[t] += stats.maa_acceptance[t] / 100.0 * n
        total += n
        bound = stats.max_ed_bound

    d_max = bound if bound else (1 << adder.width)
    return ErrorStats(
        samples=total,
        error_rate=err_count / total,
        med=sum_ed / total,
        ned=(sum_ed / total) / d_max,
        mred=sum_red / total,
        max_ed_observed=max_ed,
        max_ed_bound=bound,
        acc_amp_avg=sum_amp / total,
        acc_inf_avg=sum_inf / total,
        maa_acceptance={t: amp_hits[t] / total * 100.0 for t in maa_thresholds},
    )
