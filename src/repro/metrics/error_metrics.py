"""Quality metrics used in Table I and Table II.

Definitions (with the source each follows):

* **ED** — error distance ``|approx - exact|``.
* **MED** — mean ED over the evaluated inputs.
* **NED** — normalised ED, ``MED / D_max`` where ``D_max`` is the adder's
  maximum possible error distance (Liang et al.'s normalisation; for
  windowed adders ``D_max = Σ 2^{result_low}`` over speculative windows,
  which our tests show to be tight).  When an adder does not expose
  ``max_error_distance()``, ``2**N`` is used and noted.
* **MRED** — mean relative ED, ``mean(ED / max(exact, 1))``.
* **ACC_amp** — accuracy of amplitude [10]: ``1 - ED/exact`` clamped to
  [0, 1] (defined as 1 when the exact sum is 0 and the result is correct).
* **ACC_inf** — accuracy of information [9]: fraction of output bit
  positions that match the exact sum.
* **MAA acceptance** — for a minimum-acceptable-accuracy threshold ``t``,
  the percentage of results whose ACC_amp is at least ``t`` (the "MAA x%"
  rows of Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.adders.base import AdderModel


def error_distances(adder: AdderModel, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-pair error distance |approx - exact|."""
    return np.abs(adder.add(a, b) - adder.add_exact(a, b))


def accuracy_amplitude(approx: np.ndarray, exact: np.ndarray) -> np.ndarray:
    """ACC_amp per result: 1 - |approx-exact|/exact, clamped to [0, 1]."""
    approx = np.asarray(approx, dtype=np.float64)
    exact_f = np.asarray(exact, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        acc = 1.0 - np.abs(approx - exact_f) / exact_f
    acc = np.where(exact_f == 0, np.where(approx == 0, 1.0, 0.0), acc)
    return np.clip(acc, 0.0, 1.0)


def accuracy_information(approx: np.ndarray, exact: np.ndarray, out_width: int) -> np.ndarray:
    """ACC_inf per result: fraction of matching output bit positions."""
    diff = np.asarray(approx, dtype=np.int64) ^ np.asarray(exact, dtype=np.int64)
    wrong = np.zeros(diff.shape, dtype=np.int64)
    for i in range(out_width):
        wrong += (diff >> i) & 1
    return 1.0 - wrong / float(out_width)


def acceptance_probability(acc_amp: np.ndarray, threshold: float) -> float:
    """Fraction (%) of results whose ACC_amp meets ``threshold`` (0..1)."""
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    acc_amp = np.asarray(acc_amp)
    if acc_amp.size == 0:
        raise ValueError("no results to evaluate")
    # Tolerate float dust at exactly the threshold.
    return float(np.mean(acc_amp >= threshold - 1e-12) * 100.0)


#: MAA thresholds reported by Table I.
TABLE1_MAA_THRESHOLDS: Tuple[float, ...] = (1.0, 0.975, 0.95, 0.925, 0.90)


@dataclass
class ErrorStats:
    """Aggregate error metrics over a batch of additions."""

    samples: int
    error_rate: float
    med: float
    ned: float
    mred: float
    max_ed_observed: int
    max_ed_bound: Optional[int]
    acc_amp_avg: float
    acc_inf_avg: float
    maa_acceptance: Dict[float, float] = field(default_factory=dict)

    def maa(self, threshold: float) -> float:
        """Acceptance percentage at an MAA threshold in [0, 1]."""
        if threshold not in self.maa_acceptance:
            raise KeyError(
                f"threshold {threshold} not evaluated; have "
                f"{sorted(self.maa_acceptance)}"
            )
        return self.maa_acceptance[threshold]


def compute_error_stats(
    adder: AdderModel,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
    maa_thresholds: Sequence[float] = TABLE1_MAA_THRESHOLDS,
    exact_reference: Optional[np.ndarray] = None,
    approx_values: Optional[np.ndarray] = None,
) -> ErrorStats:
    """Evaluate every Table-I metric for ``adder`` on the given operands.

    ``exact_reference``/``approx_values`` override the single-addition
    semantics for application-level evaluation (e.g. accumulated integral
    image outputs): pass the application's exact and approximate outputs
    and the adder is only consulted for its error-distance bound.  When
    overrides are given, ``a``/``b`` may be omitted.
    """
    if approx_values is None or exact_reference is None:
        if a is None or b is None:
            raise ValueError(
                "operands a and b are required unless both exact_reference "
                "and approx_values are provided"
            )
    if approx_values is None:
        approx_values = np.asarray(adder.add(a, b))
    if exact_reference is None:
        exact_reference = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    approx_values = np.asarray(approx_values, dtype=np.int64)
    exact_reference = np.asarray(exact_reference, dtype=np.int64)
    if approx_values.shape != exact_reference.shape:
        raise ValueError("approximate and exact outputs must align")
    if approx_values.size == 0:
        raise ValueError("no samples provided")

    ed = np.abs(approx_values - exact_reference)
    bound = getattr(adder, "max_error_distance", None)
    max_bound = int(bound()) if callable(bound) else None
    d_max = max_bound if max_bound else (1 << adder.width)

    acc_amp = accuracy_amplitude(approx_values, exact_reference)
    acc_inf = accuracy_information(approx_values, exact_reference, adder.out_width)
    with np.errstate(divide="ignore", invalid="ignore"):
        red = ed / np.maximum(exact_reference, 1)

    return ErrorStats(
        samples=int(ed.size),
        error_rate=float(np.mean(ed > 0)),
        med=float(np.mean(ed)),
        ned=float(np.mean(ed) / d_max) if d_max else 0.0,
        mred=float(np.mean(red)),
        max_ed_observed=int(ed.max()),
        max_ed_bound=max_bound,
        acc_amp_avg=float(np.mean(acc_amp)),
        acc_inf_avg=float(np.mean(acc_inf)),
        maa_acceptance={t: acceptance_probability(acc_amp, t) for t in maa_thresholds},
    )
