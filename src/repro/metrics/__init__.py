"""Error metrics, Monte-Carlo simulation and exhaustive evaluation."""

from repro.metrics.error_metrics import (
    ErrorStats,
    acceptance_probability,
    accuracy_amplitude,
    accuracy_information,
    compute_error_stats,
    error_distances,
)
from repro.metrics.simulate import (
    SimulationReport,
    monte_carlo_stats,
    simulate_error_probability,
)
from repro.metrics.exhaustive import exhaustive_stats, exhaustive_error_probability
from repro.metrics.confidence import (
    Interval,
    estimate_consistent_with,
    required_samples,
    wilson_interval,
)
from repro.metrics.spectrum import ErrorSpectrum, error_spectrum, spectrum_table

__all__ = [
    "ErrorStats",
    "acceptance_probability",
    "accuracy_amplitude",
    "accuracy_information",
    "compute_error_stats",
    "error_distances",
    "SimulationReport",
    "monte_carlo_stats",
    "simulate_error_probability",
    "exhaustive_stats",
    "exhaustive_error_probability",
    "Interval",
    "estimate_consistent_with",
    "required_samples",
    "wilson_interval",
    "ErrorSpectrum",
    "error_spectrum",
    "spectrum_table",
]
