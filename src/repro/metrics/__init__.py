"""Error metrics and exhaustive evaluation.

Monte-Carlo evaluation lives in :mod:`repro.engine`: build an
:class:`~repro.engine.EvalRequest` and call
:func:`~repro.engine.evaluate` (the deprecated ``metrics.simulate``
wrappers were removed once the engine became the only sampling path).
"""

from repro.metrics.error_metrics import (
    ErrorStats,
    acceptance_probability,
    accuracy_amplitude,
    accuracy_information,
    compute_error_stats,
    error_distances,
)
from repro.metrics.exhaustive import exhaustive_stats, exhaustive_error_probability
from repro.metrics.confidence import (
    Interval,
    estimate_consistent_with,
    required_samples,
    wilson_interval,
)
from repro.metrics.spectrum import ErrorSpectrum, error_spectrum, spectrum_table

__all__ = [
    "ErrorStats",
    "acceptance_probability",
    "accuracy_amplitude",
    "accuracy_information",
    "compute_error_stats",
    "error_distances",
    "exhaustive_stats",
    "exhaustive_error_probability",
    "Interval",
    "estimate_consistent_with",
    "required_samples",
    "wilson_interval",
    "ErrorSpectrum",
    "error_spectrum",
    "spectrum_table",
]
