"""Sharded evaluation engine with deterministic seeds and result caching.

The engine is the single execution substrate for every accuracy
evaluation in the library (see ``docs/engine.md``):

* :class:`EvalRequest` / :class:`EvalResult` — the unified request/result
  API (``repro.engine.api``); requests are built with the
  ``EvalRequest.monte_carlo`` / ``.exhaustive`` / ``.fixed`` classmethods,
* :class:`Backend` / :data:`BACKENDS` — the pluggable evaluation
  backends (``repro.engine.backends``): the sharded ``sampling``
  simulator and the exact ``analytic`` error-PMF solver
  (``repro.engine.analytic``),
* :class:`Engine` — shard planning, serial or multi-process execution,
  content-addressed shard caching and ordered merging,
* :func:`evaluate` / :func:`get_default_engine` / :func:`use_engine` —
  process-default engine plumbing used by the CLI and the
  ``repro.metrics`` helpers.
"""

from repro.engine.analytic import (
    ANALYTIC_VERSION,
    AnalyticUnsupported,
    ErrorPMF,
    adder_error_pmf,
    analytic_layout,
)
from repro.engine.api import (
    METRICS_VERSION,
    EvalRequest,
    EvalResult,
    fingerprint_adder,
    fingerprint_distribution,
    request_digest,
)
from repro.engine.backends import (
    BACKENDS,
    Backend,
    register_backend,
    resolve_backend,
)
from repro.engine.cache import DEFAULT_CACHE_DIR, ShardCache
from repro.engine.core import (
    Engine,
    evaluate,
    get_default_engine,
    set_default_engine,
    use_engine,
)
from repro.engine.merge import PartialStats, merge_partials
from repro.engine.planner import (
    DEFAULT_SHARD_SAMPLES,
    Shard,
    plan_exhaustive,
    plan_fixed,
    plan_monte_carlo,
)

__all__ = [
    "ANALYTIC_VERSION",
    "AnalyticUnsupported",
    "ErrorPMF",
    "adder_error_pmf",
    "analytic_layout",
    "BACKENDS",
    "Backend",
    "register_backend",
    "resolve_backend",
    "METRICS_VERSION",
    "EvalRequest",
    "EvalResult",
    "fingerprint_adder",
    "fingerprint_distribution",
    "request_digest",
    "DEFAULT_CACHE_DIR",
    "ShardCache",
    "Engine",
    "evaluate",
    "get_default_engine",
    "set_default_engine",
    "use_engine",
    "PartialStats",
    "merge_partials",
    "DEFAULT_SHARD_SAMPLES",
    "Shard",
    "plan_exhaustive",
    "plan_fixed",
    "plan_monte_carlo",
]
