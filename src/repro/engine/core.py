"""The work-scheduling engine: shard, execute, cache, merge.

:class:`Engine` turns an :class:`~repro.engine.api.EvalRequest` into an
:class:`~repro.engine.api.EvalResult`.  Dispatch goes through the
backend registry (:mod:`repro.engine.backends`): the ``analytic``
backend answers supported requests from the exact error PMF, while the
default ``sampling`` backend runs the sharded simulator:

1. **Plan** — the request is split into canonical shards
   (:mod:`repro.engine.planner`); the plan never depends on worker count.
2. **Probe** — with a cache attached, each shard's content address is
   looked up and completed partials are reused.
3. **Execute** — remaining shards are batched into tasks and run either
   serially or on a ``ProcessPoolExecutor`` with ``jobs`` workers.
4. **Merge** — partials are folded in shard-index order
   (:mod:`repro.engine.merge`), so the merged floating-point sums are
   bit-identical at any ``jobs``/``chunk`` setting.

The module also owns the process-wide default engine used by
module-level :func:`evaluate` callers; the CLI installs a configured
engine via :func:`use_engine` for the duration of a command.
"""

from __future__ import annotations

import contextlib
import math
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.engine import api
from repro.engine.api import EvalRequest, EvalResult
from repro.engine.cache import PathLike, ShardCache
from repro.engine.merge import PartialStats, merge_partials
from repro.engine.planner import (
    DEFAULT_SHARD_SAMPLES,
    Shard,
    group_shards,
    plan_exhaustive,
    plan_fixed,
    plan_monte_carlo,
)

def _run_shard(mode: str, shard: Shard, adder, distribution,
               thresholds: Sequence[float],
               approx: Optional[np.ndarray],
               exact: Optional[np.ndarray]) -> PartialStats:
    """Evaluate one shard (runs in the parent or a pool worker)."""
    if mode == "monte_carlo":
        rng = np.random.default_rng(shard.seed_sequence())
        a, b = distribution.sample(shard.count, rng)
        return PartialStats.from_arrays(
            np.asarray(adder.add(a, b)), np.asarray(a + b),
            adder.out_width, thresholds,
        )
    if mode == "exhaustive":
        size = 1 << adder.width
        values = np.arange(size, dtype=np.int64)
        rows = values[shard.start:shard.start + shard.count]
        a = np.repeat(rows, size)
        b = np.tile(values, len(rows))
        return PartialStats.from_arrays(
            np.asarray(adder.add(a, b)), np.asarray(a + b),
            adder.out_width, thresholds,
        )
    # fixed: arrays are pre-sliced per task by the scheduler.
    return PartialStats.from_arrays(approx, exact, adder.out_width, thresholds)


def _run_task(payload):
    """Evaluate a batch of shards; module-level so it pickles for pools.

    Returns ``(results, frame)`` where ``frame`` is a
    :class:`~repro.obs.TelemetryFrame` of the task's shard telemetry (or
    None when tracing is off).  The task records into a *private*
    collector — the parent's active collector does not exist in a pool
    worker — and the parent folds the frame home, so counters and span
    totals are identical at any ``jobs`` value.
    """
    mode, adder, distribution, thresholds, shards, arrays, trace = payload
    collector = obs.Collector() if trace else None
    out: List[Tuple[int, PartialStats, float]] = []
    for pos, shard in enumerate(shards):
        approx = exact = None
        if arrays is not None:
            approx, exact = arrays[pos]
        t0 = time.perf_counter()
        partial = _run_shard(mode, shard, adder, distribution, thresholds,
                             approx, exact)
        elapsed = time.perf_counter() - t0
        out.append((shard.index, partial, elapsed))
        if collector is not None:
            collector.record_span("engine.shard", elapsed)
            collector.count("engine.shard.samples", partial.samples)
            collector.observe("engine.shard.duration_s", elapsed,
                              bounds=obs.DURATION_BOUNDS)
    return out, (collector.snapshot() if collector is not None else None)


class Engine:
    """Sharded, optionally parallel, optionally cached evaluation engine.

    Args:
        jobs: worker processes (1 = run in-process, no pool).
        cache: shard cache — a directory path or a :class:`ShardCache`
            instance; None disables caching.
        shard_samples: canonical Monte-Carlo shard granularity.  Part of
            the determinism contract: two engines agree bit-for-bit iff
            they agree on this value (it is baked into cache keys).

    The cumulative ``shards_executed`` / ``shards_cached`` counters let
    callers assert that a warm-cache rerun did zero simulation work.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[Union[PathLike, ShardCache]] = None,
                 shard_samples: int = DEFAULT_SHARD_SAMPLES) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if shard_samples < 1:
            raise ValueError(f"shard_samples must be >= 1, got {shard_samples}")
        self.jobs = int(jobs)
        self.cache: Optional[ShardCache]
        if cache is None or isinstance(cache, ShardCache):
            self.cache = cache
        else:
            self.cache = ShardCache(cache)
        self.shard_samples = int(shard_samples)
        self.shards_executed = 0
        self.shards_cached = 0

    def reset_counters(self) -> None:
        self.shards_executed = 0
        self.shards_cached = 0

    # -- planning helpers ---------------------------------------------------

    def _plan(self, request: EvalRequest) -> List[Shard]:
        if request.mode == "monte_carlo":
            return plan_monte_carlo(request.samples, request.seed,
                                    self.shard_samples)
        if request.mode == "exhaustive":
            return plan_exhaustive(request.adder.width)
        return plan_fixed(int(np.asarray(request.approx_values).size))

    def _shards_per_task(self, request: EvalRequest, pending: int) -> int:
        if request.chunk is not None:
            if request.chunk < 1:
                raise ValueError(f"chunk must be >= 1, got {request.chunk}")
            if request.mode == "monte_carlo":
                return max(1, request.chunk // self.shard_samples)
            return max(1, request.chunk)
        if self.jobs == 1:
            return max(1, pending)
        # Aim for ~4 tasks per worker so stragglers rebalance.
        return max(1, math.ceil(pending / (self.jobs * 4)))

    def _cacheable(self, request: EvalRequest) -> bool:
        if self.cache is None:
            return False
        # A None seed resolves to fresh OS entropy per call: the key would
        # never be seen again, so caching would only pollute the store.
        if request.mode == "monte_carlo" and request.seed is None:
            return False
        return True

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, request: EvalRequest) -> EvalResult:
        """Run one request to a merged :class:`ErrorStats`.

        The request's ``backend`` field selects who does the mathematics
        (see :mod:`repro.engine.backends`); the engine contributes cache,
        jobs and telemetry plumbing either way.
        """
        from repro.engine.backends import resolve_backend

        with obs.span("engine.evaluate"):
            backend = resolve_backend(request)
            obs.count("engine.requests")
            obs.count(f"engine.backend.{backend.name}.requests")
            with obs.span(f"engine.backend.{backend.name}"):
                return backend.evaluate(request, self)

    def _run_sampling(self, request: EvalRequest,
                      backend_name: str = "sampling") -> EvalResult:
        """The sharded simulator (the ``sampling`` backend's entry point).

        ``backend_name`` qualifies every shard cache key: the ``compiled``
        backend reuses this whole pipeline with a substituted adder, and
        its partials must never collide with plain sampled ones.
        """
        started = time.perf_counter()
        shards = self._plan(request)
        obs.count("engine.shards.planned", len(shards))
        distribution = request.distribution
        if request.mode == "monte_carlo" and distribution is None:
            from repro.utils.distributions import UniformOperands

            distribution = UniformOperands(request.adder.width)

        partials: Dict[int, PartialStats] = {}
        digests: Dict[int, str] = {}
        use_cache = self._cacheable(request)
        if use_cache:
            material = api.request_key_material(request, backend=backend_name)
            for shard in shards:
                digest = ShardCache.shard_key(
                    material, shard.index, shard.start, shard.count,
                    self.shard_samples, shard.entropy,
                )
                digests[shard.index] = digest
                cached = self.cache.load(digest)
                if cached is not None:
                    partials[shard.index] = cached

        pending = [s for s in shards if s.index not in partials]
        timings: List[float] = []
        if pending:
            tasks = group_shards(pending,
                                 self._shards_per_task(request, len(pending)))
            fixed_approx = fixed_exact = None
            if request.mode == "fixed":
                fixed_approx = np.asarray(request.approx_values,
                                          dtype=np.int64).ravel()
                fixed_exact = np.asarray(request.exact_reference,
                                         dtype=np.int64).ravel()
            payloads = []
            for task in tasks:
                arrays = None
                if request.mode == "fixed":
                    arrays = [
                        (fixed_approx[s.start:s.start + s.count],
                         fixed_exact[s.start:s.start + s.count])
                        for s in task
                    ]
                payloads.append((request.mode, request.adder, distribution,
                                 request.maa_thresholds, task, arrays,
                                 obs.enabled()))

            if self.jobs > 1 and len(payloads) > 1:
                with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(payloads))
                ) as pool:
                    results = list(pool.map(_run_task, payloads))
            else:
                results = [_run_task(p) for p in payloads]

            for task_result, frame in results:
                obs.absorb(frame)
                for index, partial, elapsed in task_result:
                    partials[index] = partial
                    timings.append(elapsed)
                    if use_cache:
                        self.cache.store(digests[index], partial, elapsed)

        self.shards_executed += len(pending)
        self.shards_cached += len(shards) - len(pending)
        obs.count("engine.shards.executed", len(pending))
        obs.count("engine.shards.cached", len(shards) - len(pending))

        merged = merge_partials(
            (partials[s.index] for s in shards), request.maa_thresholds
        )
        stats = merged.finalize(*_error_distance_bounds(request.adder))
        return EvalResult(
            stats=stats,
            mode=request.mode,
            adder_name=request.adder.name,
            adder_fingerprint=api.fingerprint_adder(request.adder),
            shards_total=len(shards),
            shards_executed=len(pending),
            shards_cached=len(shards) - len(pending),
            jobs=self.jobs,
            elapsed_s=time.perf_counter() - started,
            shard_timings=tuple(timings),
        )

    # -- removed conveniences -----------------------------------------------
    #
    # Request construction lives on EvalRequest itself
    # (EvalRequest.monte_carlo / .exhaustive / .fixed).  The old engine
    # methods spent their two deprecation releases as warning shims and
    # are now hard errors with a pointer at the replacement, so stale
    # callers fail loudly instead of silently building the wrong request.

    def monte_carlo(self, *args, **kwargs):
        raise TypeError(
            "Engine.monte_carlo() was removed; build the request with "
            "EvalRequest.monte_carlo(adder, samples, ...) and call "
            "Engine.evaluate(request).stats")

    def exhaustive(self, *args, **kwargs):
        raise TypeError(
            "Engine.exhaustive() was removed; build the request with "
            "EvalRequest.exhaustive(adder, ...) and call "
            "Engine.evaluate(request).stats")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cache = self.cache.root if self.cache else None
        return (f"Engine(jobs={self.jobs}, cache={str(cache)!r}, "
                f"shard_samples={self.shard_samples})")


def _error_distance_bounds(adder) -> Tuple[int, Optional[int]]:
    """(d_max, max_ed_bound) exactly as compute_error_stats resolves them."""
    bound = getattr(adder, "max_error_distance", None)
    max_bound = int(bound()) if callable(bound) else None
    return (max_bound if max_bound else (1 << adder.width)), max_bound


# -- default engine ---------------------------------------------------------

_default_engine = Engine()


def get_default_engine() -> Engine:
    """The engine used by the legacy metric wrappers."""
    return _default_engine


def set_default_engine(engine: Engine) -> Engine:
    """Install ``engine`` as the process default; returns the previous one."""
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous


@contextlib.contextmanager
def use_engine(engine: Engine) -> Iterator[Engine]:
    """Scope ``engine`` as the default (the CLI wraps commands in this)."""
    previous = set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)


def evaluate(request: EvalRequest, engine: Optional[Engine] = None) -> EvalResult:
    """Evaluate ``request`` on ``engine`` (default: the process engine)."""
    return (engine or get_default_engine()).evaluate(request)
