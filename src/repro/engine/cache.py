"""Content-addressed on-disk cache for completed shard partials.

Each cached entry is one shard's :class:`~repro.engine.merge.PartialStats`
stored as JSON.  The key is the SHA-256 digest of the canonical JSON of

* the request material — metrics version, evaluation mode, adder
  fingerprint, distribution fingerprint, total samples, MAA thresholds
  (and, for fixed mode, a content hash of the scored arrays), and
* the shard material — shard index, start, count, shard granularity and
  the root seed entropy.

The request material always names the *resolved evaluation backend*, so
sampled shard partials and the analytic backend's whole-request error
PMFs (stored through the generic :meth:`ShardCache.store_payload` /
:meth:`ShardCache.load_payload` pair) live under disjoint digests and
can never be served for one another.

Layout: ``<root>/<digest[:2]>/<digest>.json`` (git-object style fan-out
so a directory never accumulates millions of entries).  Writes go
through a temp file + ``os.replace`` so concurrent workers can never
observe a torn entry.

A ``max_bytes`` cap bounds the store: when the estimated on-disk size
exceeds it, :meth:`ShardCache.prune` evicts entries oldest-first
(by mtime) until the store fits — but never an entry written by the
current process, so a run can always warm-start from its own work.
Loads, stores and evictions are reported through :mod:`repro.obs`
(``engine.cache.hit`` / ``miss`` / ``store`` / ``evicted`` counters and
``bytes_read`` / ``bytes_written``), so ``gear --profile`` and
``gear cache stats`` see cache effectiveness directly.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro import obs
from repro.engine import api
from repro.engine.merge import PartialStats

PathLike = Union[str, pathlib.Path]

#: Default cache location used by the CLI's bare ``--cache`` flag.
DEFAULT_CACHE_DIR = ".gear-cache"


class ShardCache:
    """Content-addressed store of shard partials with hit/miss counters.

    Args:
        root: cache directory (created lazily on first store).
        max_bytes: size cap; None (the default) leaves the store
            unbounded.  Enforced opportunistically after stores — the
            store may transiently exceed the cap by one entry before
            pruning brings it back under.
    """

    def __init__(self, root: PathLike = DEFAULT_CACHE_DIR,
                 max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = pathlib.Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        #: Digests written by this process — never evicted by prune().
        self._protected: Set[str] = set()
        # Lazily initialised running estimate of the on-disk size; kept
        # in sync by store() so pruning does not rescan on every write.
        self._approx_bytes: Optional[int] = None

    # -- keying -------------------------------------------------------------

    @staticmethod
    def shard_key(request_material: Dict, shard_index: int, start: int,
                  count: int, shard_samples: int,
                  entropy: Optional[int]) -> str:
        """Digest of one shard's full identity."""
        material = dict(request_material)
        material.update({
            "shard": shard_index,
            "start": start,
            "count": count,
            "granularity": shard_samples,
            "entropy": None if entropy is None else str(entropy),
        })
        return api.key_digest(material)

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / digest[:2] / f"{digest}.json"

    # -- store --------------------------------------------------------------

    def load(self, digest: str) -> Optional[PartialStats]:
        """Return the cached partial, or None (counts a hit/miss)."""
        path = self._path(digest)
        try:
            text = path.read_text()
            partial = PartialStats.from_dict(json.loads(text)["partial"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            obs.count("engine.cache.miss")
            return None
        self.hits += 1
        obs.count("engine.cache.hit")
        obs.count("engine.cache.bytes_read", len(text))
        return partial

    def load_payload(self, digest: str) -> Optional[dict]:
        """Return the raw JSON payload under ``digest`` (counts a hit/miss).

        Generic sibling of :meth:`load` for entries that are not shard
        partials — e.g. the analytic backend's cached error PMFs.
        """
        path = self._path(digest)
        try:
            text = path.read_text()
            payload = json.loads(text)
        except (OSError, ValueError):
            self.misses += 1
            obs.count("engine.cache.miss")
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            obs.count("engine.cache.miss")
            return None
        self.hits += 1
        obs.count("engine.cache.hit")
        obs.count("engine.cache.bytes_read", len(text))
        return payload

    def store(self, digest: str, partial: PartialStats,
              elapsed_s: float = 0.0) -> None:
        """Persist one shard partial atomically."""
        self.store_payload(digest, {
            "version": api.METRICS_VERSION,
            "partial": partial.to_dict(),
            "elapsed_s": elapsed_s,
        })

    def store_payload(self, digest: str, payload: dict) -> None:
        """Persist an arbitrary JSON-safe payload atomically under ``digest``."""
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, sort_keys=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
        self.writes += 1
        self._protected.add(digest)
        obs.count("engine.cache.store")
        obs.count("engine.cache.bytes_written", len(text))
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self.disk_usage()[1]
            else:
                self._approx_bytes += len(text)
            if self._approx_bytes > self.max_bytes:
                self.prune()

    # -- maintenance --------------------------------------------------------

    def _entries(self) -> List[Tuple[float, pathlib.Path, int]]:
        """(mtime, path, size) of every entry; stat races drop the entry."""
        entries: List[Tuple[float, pathlib.Path, int]] = []
        if not self.root.is_dir():
            return entries
        for path in self.root.glob("??/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
        return entries

    def digests(self) -> Iterator[str]:
        """All digests currently present on disk."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def disk_usage(self) -> Tuple[int, int]:
        """(entry count, total bytes) currently on disk."""
        entries = self._entries()
        return len(entries), sum(size for _, _, size in entries)

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict oldest entries until the store fits ``max_bytes``.

        Entries written by this process are exempt — a run never evicts
        its own shards, even if that leaves the store above the cap.
        Returns the number of entries removed.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            raise ValueError("prune needs a size cap (max_bytes)")
        entries = sorted(self._entries(), key=lambda e: (e[0], e[1].name))
        total = sum(size for _, _, size in entries)
        removed = 0
        for _, path, size in entries:
            if total <= cap:
                break
            if path.stem in self._protected:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        self.evictions += removed
        self._approx_bytes = total
        if removed:
            obs.count("engine.cache.evicted", removed)
        return removed

    def clear(self) -> int:
        """Remove every entry (protected or not); returns the count."""
        removed = 0
        for _, path, _ in self._entries():
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        self._protected.clear()
        self._approx_bytes = 0
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardCache(root={str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses})")
