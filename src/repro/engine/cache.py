"""Content-addressed on-disk cache for completed shard partials.

Each cached entry is one shard's :class:`~repro.engine.merge.PartialStats`
stored as JSON.  The key is the SHA-256 digest of the canonical JSON of

* the request material — metrics version, evaluation mode, adder
  fingerprint, distribution fingerprint, total samples, MAA thresholds
  (and, for fixed mode, a content hash of the scored arrays), and
* the shard material — shard index, start, count, shard granularity and
  the root seed entropy.

Layout: ``<root>/<digest[:2]>/<digest>.json`` (git-object style fan-out
so a directory never accumulates millions of entries).  Writes go
through a temp file + ``os.replace`` so concurrent workers can never
observe a torn entry.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Optional, Union

from repro.engine import api
from repro.engine.merge import PartialStats

PathLike = Union[str, pathlib.Path]

#: Default cache location used by the CLI's bare ``--cache`` flag.
DEFAULT_CACHE_DIR = ".gear-cache"


class ShardCache:
    """Content-addressed store of shard partials with hit/miss counters."""

    def __init__(self, root: PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- keying -------------------------------------------------------------

    @staticmethod
    def shard_key(request_material: Dict, shard_index: int, start: int,
                  count: int, shard_samples: int,
                  entropy: Optional[int]) -> str:
        """Digest of one shard's full identity."""
        material = dict(request_material)
        material.update({
            "shard": shard_index,
            "start": start,
            "count": count,
            "granularity": shard_samples,
            "entropy": None if entropy is None else str(entropy),
        })
        return api.key_digest(material)

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / digest[:2] / f"{digest}.json"

    # -- store --------------------------------------------------------------

    def load(self, digest: str) -> Optional[PartialStats]:
        """Return the cached partial, or None (counts a hit/miss)."""
        path = self._path(digest)
        try:
            payload = json.loads(path.read_text())
            partial = PartialStats.from_dict(payload["partial"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return partial

    def store(self, digest: str, partial: PartialStats,
              elapsed_s: float = 0.0) -> None:
        """Persist one shard partial atomically."""
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": api.METRICS_VERSION,
            "partial": partial.to_dict(),
            "elapsed_s": elapsed_s,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        self.writes += 1

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardCache(root={str(self.root)!r}, hits={self.hits}, "
                f"misses={self.misses})")
