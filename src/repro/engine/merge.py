"""Associative partial statistics and their exact merge.

:class:`PartialStats` is the shard-level currency of the engine: raw sums
and integer counts rather than means and percentages, so that two
partials merge *exactly* — ``merge`` is associative and has an identity
(:meth:`PartialStats.empty`), which is what makes the merged result
independent of shard grouping and worker count.  The engine always folds
partials in canonical shard order, so even the floating-point sums are
bit-identical at any job count.

``finalize`` converts the accumulated sums into the library-wide
:class:`~repro.metrics.error_metrics.ErrorStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.error_metrics import (
    ErrorStats,
    accuracy_amplitude,
    accuracy_information,
)


@dataclass(frozen=True)
class PartialStats:
    """Raw error-metric sums over one shard of evaluated additions."""

    samples: int
    err_count: int
    sum_ed: float
    sum_red: float
    sum_amp: float
    sum_inf: float
    max_ed: int
    maa_hits: Tuple[Tuple[float, int], ...]

    @classmethod
    def empty(cls, thresholds: Sequence[float]) -> "PartialStats":
        """Merge identity for the given threshold set."""
        return cls(0, 0, 0.0, 0.0, 0.0, 0.0, 0,
                   tuple((float(t), 0) for t in thresholds))

    @classmethod
    def from_arrays(
        cls,
        approx: np.ndarray,
        exact: np.ndarray,
        out_width: int,
        thresholds: Sequence[float],
    ) -> "PartialStats":
        """Evaluate one shard's outputs into raw sums and counts."""
        approx = np.asarray(approx, dtype=np.int64)
        exact = np.asarray(exact, dtype=np.int64)
        if approx.shape != exact.shape:
            raise ValueError("approximate and exact outputs must align")
        if approx.size == 0:
            raise ValueError("empty shard")
        ed = np.abs(approx - exact)
        acc_amp = accuracy_amplitude(approx, exact)
        acc_inf = accuracy_information(approx, exact, out_width)
        with np.errstate(divide="ignore", invalid="ignore"):
            red = ed / np.maximum(exact, 1)
        # The 1e-12 slack matches acceptance_probability()'s float-dust rule.
        hits = tuple(
            (float(t), int(np.count_nonzero(acc_amp >= t - 1e-12)))
            for t in thresholds
        )
        return cls(
            samples=int(ed.size),
            err_count=int(np.count_nonzero(ed)),
            sum_ed=float(np.sum(ed, dtype=np.float64)),
            sum_red=float(np.sum(red, dtype=np.float64)),
            sum_amp=float(np.sum(acc_amp, dtype=np.float64)),
            sum_inf=float(np.sum(acc_inf, dtype=np.float64)),
            max_ed=int(ed.max()),
            maa_hits=hits,
        )

    def merge(self, other: "PartialStats") -> "PartialStats":
        """Associative combination of two shard partials."""
        if self.samples == 0:
            return other
        if other.samples == 0:
            return self
        mine = dict(self.maa_hits)
        theirs = dict(other.maa_hits)
        if set(mine) != set(theirs):
            raise ValueError("cannot merge partials with different thresholds")
        return PartialStats(
            samples=self.samples + other.samples,
            err_count=self.err_count + other.err_count,
            sum_ed=self.sum_ed + other.sum_ed,
            sum_red=self.sum_red + other.sum_red,
            sum_amp=self.sum_amp + other.sum_amp,
            sum_inf=self.sum_inf + other.sum_inf,
            max_ed=max(self.max_ed, other.max_ed),
            maa_hits=tuple((t, mine[t] + theirs[t]) for t, _ in self.maa_hits),
        )

    def finalize(self, d_max: int, max_ed_bound: Optional[int]) -> ErrorStats:
        """Convert accumulated sums into the public :class:`ErrorStats`."""
        n = self.samples
        if n == 0:
            raise ValueError("cannot finalize empty statistics")
        return ErrorStats(
            samples=n,
            error_rate=self.err_count / n,
            med=self.sum_ed / n,
            ned=(self.sum_ed / n) / d_max if d_max else 0.0,
            mred=self.sum_red / n,
            max_ed_observed=self.max_ed,
            max_ed_bound=max_ed_bound,
            acc_amp_avg=self.sum_amp / n,
            acc_inf_avg=self.sum_inf / n,
            maa_acceptance={t: hits / n * 100.0 for t, hits in self.maa_hits},
        )

    # -- serialization for the shard cache ----------------------------------

    def to_dict(self) -> Dict:
        return {
            "samples": self.samples,
            "err_count": self.err_count,
            "sum_ed": self.sum_ed,
            "sum_red": self.sum_red,
            "sum_amp": self.sum_amp,
            "sum_inf": self.sum_inf,
            "max_ed": self.max_ed,
            "maa_hits": [[t, hits] for t, hits in self.maa_hits],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PartialStats":
        return cls(
            samples=int(payload["samples"]),
            err_count=int(payload["err_count"]),
            sum_ed=float(payload["sum_ed"]),
            sum_red=float(payload["sum_red"]),
            sum_amp=float(payload["sum_amp"]),
            sum_inf=float(payload["sum_inf"]),
            max_ed=int(payload["max_ed"]),
            maa_hits=tuple((float(t), int(h)) for t, h in payload["maa_hits"]),
        )


def merge_partials(partials: Iterable[PartialStats],
                   thresholds: Sequence[float]) -> PartialStats:
    """Left fold of partials in the given (canonical) order."""
    acc = PartialStats.empty(thresholds)
    for part in partials:
        acc = acc.merge(part)
    return acc
