"""Exact analytic error statistics for block-based approximate adders.

Every accuracy number in the repo can be obtained by simulation, but for
pure *block-based* adders — those whose approximate sum is fully described
by a window layout plus an optional OR-truncated low part, i.e. every
:class:`~repro.spec.ir.AdderSpec` and every non-overridden
:class:`~repro.adders.base.WindowedSpeculativeAdder` — the full signed
error PMF is computable exactly in closed form (Wu, Li, Ge & Qian,
arXiv 1703.03522).  The key observation is that the error of such an
adder depends on the operands only through the per-bit generate /
propagate / kill sequence, so a dynamic program over

    ``(carry into next bit, trailing propagate-run length)``

states, with the accumulated signed error carried alongside, visits each
bit once and yields the exact distribution:

* scanning bit ``i`` multiplies in the per-bit transition probabilities
  ``rho_g = alpha_i^2`` (generate), ``rho_p = 2 alpha_i (1 - alpha_i)``
  (propagate) and ``rho_k = (1 - alpha_i)^2`` (kill), where ``alpha_i``
  is the probability that bit ``i`` of an operand is one (both operands
  i.i.d. per bit);
* a *miss* of window ``w`` — the window computing its field with local
  carry-in 0 while the true carry into ``result_low`` is 1 — fires at
  the end of bit ``result_low - 1`` exactly when ``carry == 1`` and the
  propagate run covers the window's prediction bits, and subtracts
  ``2**result_low``;
* a *wrap* of a non-last window — the missing carry would have rippled
  out of the window's top — fires at the end of bit ``result_high`` when
  ``carry == 1`` and the whole window propagated, and adds
  ``2**(result_high + 1)``;
* an OR-truncated low part emits ``-2**i`` on the generate branch of
  each truncated bit and a ``+2**truncation`` correction whenever the
  true carry into the first window is one; the first window above a
  truncation misses with threshold 1 and wraps with threshold
  ``length + 1`` because its local carry-in is the generate of bit
  ``truncation - 1``;
* a ``hoeraa`` static low part is the OR rule with the top static bit
  computed as a half-adder sum: on that bit's generate branch the
  output loses ``2**(t-1)`` *more* than the OR rule, so its generate
  delta doubles to ``-2**t`` (which the ``+2**t`` carry correction then
  cancels exactly — HOERAA's static error is confined to the bits below
  the boundary);
* a *rectified* window (IR v2 ``rectify`` stage) adds its §3.3 flag back
  at ``result_low``, repairing exactly the misses its flag observes: the
  flag is ``AND(prediction propagates) & previous local carry-out``, so
  the window's residual miss condition tightens from ``run >=
  prediction_bits`` to ``run >= result_low - previous.low`` — the full
  span whose propagation defeats the previous window's local carry-out
  too.  That threshold equals the previous window's wrap threshold, so
  for interior windows the wrap/miss pair fuses into a no-op (the wrap
  is always re-missed in full) and for the first speculative window the
  event is unreachable: a fully rectified ``error_detect`` spec is
  provably exact;
* the last window emits nothing at the top: its wrap (``+2**N``) and the
  flipped carry-out bit (``-2**N``) occur under the identical condition
  and cancel exactly;
* windows anchored at bit 0 cannot miss or wrap (their local carry-in
  *is* the true carry), so they are exempt from the schedule.

EP, MED, max-ED, NED and the MAA acceptance at threshold 1.0 are then
plain reductions of the PMF; MRED and the amplitude/information accuracy
averages depend on the joint (error, exact sum) distribution and remain
``None`` in analytic results.

The DP is vectorised in two passes.  A *symbolic* pass walks the event
bits only, tracking for every error value an upper bound on its trailing
propagate run; that discovers the full error support and compiles the
scan into a short op list (segment matmuls + index-planned emissions).
Runs of event-free bits never need per-bit scanning: the ``(carry, run)``
distribution after ``g`` homogeneous bits has a closed form (the run is
geometric in the propagate probability, the carry chain is a two-state
Markov chain), so each gap collapses into a single precomputed segment
matrix.  The *numeric* pass then replays the op list over one
preallocated ``(support, states)`` array.  See ``docs/analytic.md`` for
the full formulation and the supported-spec rules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.error_metrics import TABLE1_MAA_THRESHOLDS, ErrorStats

__all__ = [
    "ANALYTIC_VERSION",
    "MAX_SUPPORT",
    "AnalyticUnsupported",
    "ErrorPMF",
    "adder_error_pmf",
    "analytic_layout",
    "bit_probability_profile",
    "error_pmf",
]

#: Version of the analytic formulation; folded into cache keys so stored
#: PMFs are invalidated whenever the DP changes.  2: static-approximation
#: kinds (HOERAA) and rectified windows joined the formulation.
ANALYTIC_VERSION = 2

#: Hard cap on the tracked error-support size.  Real block-based layouts
#: stay far below this (support is bounded by the realisable subset sums
#: of per-window deltas); the cap turns a pathological layout into a
#: clean :class:`AnalyticUnsupported` instead of an OOM.
MAX_SUPPORT = 1 << 20


class AnalyticUnsupported(ValueError):
    """Raised when a request cannot be answered by the analytic backend."""


@dataclass(frozen=True)
class ErrorPMF:
    """Exact distribution of the signed error ``approx - exact``.

    ``support`` is sorted ascending and every probability is strictly
    positive; an exact adder has the single entry ``{0: 1.0}``.
    """

    width: int
    support: Tuple[int, ...]
    probabilities: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.support) != len(self.probabilities):
            raise ValueError("support and probabilities must align")
        if not self.support:
            raise ValueError("an error PMF cannot be empty")

    @property
    def total_mass(self) -> float:
        return math.fsum(self.probabilities)

    @property
    def error_rate(self) -> float:
        """Exact error probability ``P(error != 0)``."""
        return math.fsum(p for e, p in zip(self.support, self.probabilities)
                         if e != 0)

    @property
    def med(self) -> float:
        """Exact mean error distance ``E[|error|]``."""
        return math.fsum(abs(e) * p
                         for e, p in zip(self.support, self.probabilities))

    @property
    def max_abs(self) -> int:
        """Largest error magnitude with non-zero probability."""
        return max(abs(e) for e in self.support)

    def probability(self, error: int) -> float:
        for e, p in zip(self.support, self.probabilities):
            if e == error:
                return p
        return 0.0

    def to_dict(self) -> dict:
        return {
            "width": self.width,
            "support": list(self.support),
            "probabilities": list(self.probabilities),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ErrorPMF":
        return cls(
            width=int(payload["width"]),
            support=tuple(int(e) for e in payload["support"]),
            probabilities=tuple(float(p) for p in payload["probabilities"]),
        )

    def to_error_stats(
        self,
        maa_thresholds: Sequence[float] = TABLE1_MAA_THRESHOLDS,
        max_ed_bound: Optional[int] = None,
    ) -> ErrorStats:
        """Reduce the PMF to an :class:`ErrorStats` record.

        ``samples`` is 0 to mark the result as analytic.  MRED and the
        accuracy averages need the joint (error, exact-sum) distribution
        and stay ``None``; the MAA curve is exact only at threshold 1.0
        (amplitude accuracy >= 1 iff the error is zero), so other
        thresholds are omitted from the acceptance map.
        """
        d_max = max_ed_bound if max_ed_bound else (1 << self.width)
        # One pass over the support feeds all three reductions.
        err_terms = []
        med_terms = []
        max_abs = 0
        for e, p in zip(self.support, self.probabilities):
            a = abs(e)
            med_terms.append(a * p)
            if e:
                err_terms.append(p)
            if a > max_abs:
                max_abs = a
        error_rate = math.fsum(err_terms)
        med = math.fsum(med_terms)
        acceptance = {
            float(threshold): (1.0 - error_rate) * 100.0
            for threshold in maa_thresholds
            if threshold >= 1.0 - 1e-12
        }
        return ErrorStats(
            samples=0,
            error_rate=error_rate,
            med=med,
            ned=med / d_max,
            mred=None,
            max_ed_observed=max_abs,
            max_ed_bound=max_ed_bound,
            acc_amp_avg=None,
            acc_inf_avg=None,
            maa_acceptance=acceptance,
        )


def analytic_layout(
    adder,
) -> Optional[Tuple[int, Tuple[object, ...], int, Optional[str],
                    Tuple[int, ...]]]:
    """Extract ``(width, windows, truncation, static_kind, rectified)``.

    ``static_kind`` names the fixed low part's gate rule (``or`` /
    ``hoeraa``; ``None`` when ``truncation`` is 0) and ``rectified`` the
    indices of the windows whose flags are added back by a rectify stage
    (empty for none).  Returns ``None`` when the adder's arithmetic is
    not fully described by a window layout — i.e. when it overrides
    ``_add_impl`` without exposing an :class:`~repro.spec.ir.AdderSpec`
    (ETAI's segment OR, the standalone LOA class, or any custom model).

    Adders are immutable, so the answer is memoised on the instance —
    backend dispatch asks once to route the request and once to solve it.
    """
    cached = getattr(adder, "_analytic_layout", None)
    if cached is not None:
        return cached[0]

    from repro.adders.base import WindowedSpeculativeAdder
    from repro.spec.ir import AdderSpec
    from repro.spec.model import RectifiedSpecAdder

    layout = None
    if getattr(adder, "is_exact", False):
        layout = (adder.width, (), 0, None, ())
    else:
        spec = getattr(adder, "spec", None)
        if isinstance(spec, AdderSpec):
            if spec.is_exact:
                layout = (spec.width, (), 0, None, ())
            else:
                static = spec.static_window
                if static is not None:
                    layout = (spec.width, spec.to_windows()[1:],
                              static.length, static.approx, ())
                else:
                    layout = (spec.width, spec.to_windows(),
                              spec.truncation,
                              "or" if spec.truncation else None,
                              spec.rectified_windows())
                # A model that overrides _add_impl beyond what the spec
                # declares (subclasses of the spec models) is not covered.
                if not isinstance(adder, RectifiedSpecAdder) \
                        and spec.rectify is not None:
                    layout = None
        elif (isinstance(adder, WindowedSpeculativeAdder)
                and type(adder)._add_impl is WindowedSpeculativeAdder._add_impl):
            layout = (adder.width, tuple(adder.windows), 0, None, ())
    try:
        adder._analytic_layout = (layout,)
    except (AttributeError, TypeError):  # slotted/frozen foreign models
        pass
    return layout


def bit_probability_profile(distribution, width: int,
                            mode: str) -> Optional[Tuple[float, ...]]:
    """Per-bit one-probabilities for an evaluation request.

    Exhaustive evaluation enumerates the full operand space uniformly,
    so the profile is uniform regardless of the request's distribution;
    Monte-Carlo requests use the distribution's per-bit independent form
    when it has one (``None`` otherwise — the analytic backend cannot
    serve such a request).
    """
    if mode == "exhaustive" or distribution is None:
        return (0.5,) * width
    return distribution.bit_probabilities()


def _emission_schedule(
    windows: Sequence[object], truncation: int,
    rectified: Tuple[int, ...] = (),
) -> Dict[int, Tuple[Tuple[int, int], ...]]:
    """Map ``bit -> ((run_threshold, error_delta), ...)``.

    Each entry fires at the end of the named bit for states with
    ``carry == 1`` and ``run >= run_threshold``, adding ``error_delta``
    to the accumulated error.  A threshold of 0 conditions on the carry
    alone.
    """
    schedule: Dict[int, List[Tuple[int, int]]] = {}
    rect = set(rectified)

    def put(bit: int, threshold: int, delta: int) -> None:
        schedule.setdefault(bit, []).append((threshold, delta))

    if truncation > 0:
        # The OR'd low part never produces the true carry into the first
        # window; whenever that carry is one the approximate sum is short
        # one unit at bit `truncation` before window effects.
        put(truncation - 1, 0, 1 << truncation)
    last = len(windows) - 1
    for idx, window in enumerate(windows):
        if window.low == 0:
            # The window's local carry-in is the true carry: exact.
            continue
        if idx == 0:
            if truncation == 0:
                continue
            # Local carry-in is generate(truncation - 1): a miss needs the
            # boundary bit to propagate under a true carry, and a wrap
            # additionally needs the whole window to propagate.
            miss_threshold = 1
            wrap_threshold = window.length + 1
        else:
            if idx in rect:
                # Rectification repairs exactly the misses the window's
                # flag sees, so only misses *invisible* to the flag
                # survive: those where the previous window's local
                # carry-out is 0 too, i.e. the propagate run reaches all
                # the way down past the previous window's low bit.
                miss_threshold = window.result_low - windows[idx - 1].low
            else:
                miss_threshold = window.prediction_bits
            wrap_threshold = window.length
        put(window.result_low - 1, miss_threshold, -(1 << window.result_low))
        if idx != last:
            put(window.result_high, wrap_threshold,
                1 << (window.result_high + 1))
    return {bit: tuple(entries) for bit, entries in schedule.items()}


def _segment_matrix(n_states: int, cap: int, alpha: float, g: int,
                    with_generate: bool = True) -> np.ndarray:
    """Closed-form ``(carry, run)`` transition for ``g`` homogeneous bits.

    Equal to the one-bit transition raised to the ``g``-th power, but
    built directly: a trailing run of length ``r < g`` ends at the last
    non-propagate bit, whose kind alone fixes the carry, so those states
    get the start-independent geometric weights ``rho_p**r * rho_g`` /
    ``rho_p**r * rho_k``; the only start-dependent mass is the
    all-propagate branch (probability ``rho_p**g``), which keeps the
    carry and advances the run by ``g`` (saturating at ``cap``).

    ``with_generate=False`` is the single-bit transition without the
    generate branch — truncated bits move error mass on generate, so
    that branch cannot be error-preserving matrix algebra.
    """
    rho_g = alpha * alpha
    rho_p = 2.0 * alpha * (1.0 - alpha)
    rho_k = (1.0 - alpha) ** 2
    M = np.zeros((n_states, n_states), dtype=np.float64)
    if with_generate:
        fresh = min(g, cap)
        lam = rho_p ** np.arange(fresh)
        M[:, :fresh] = rho_k * lam
        M[:, cap + 1:cap + 1 + fresh] = rho_g * lam
        if g > cap:
            # In-gap runs that already saturated: the run ends at a
            # non-propagate bit cap..g-1 places back.
            if rho_p == 1.0:  # pragma: no cover - 2a(1-a) < 1 always
                tail = float(g - cap)
            else:
                tail = (rho_p ** cap - rho_p ** g) / (1.0 - rho_p)
            M[:, cap] += rho_k * tail
            M[:, 2 * cap + 1] += rho_g * tail
    else:
        if g != 1:
            raise ValueError("generate-free segments are single bits")
        M[:, 0] = rho_k
    src = np.arange(n_states)
    run = src % (cap + 1)
    M[src, src - run + np.minimum(run + g, cap)] += rho_p ** g
    return M


@lru_cache(maxsize=512)
def _cached_segment_matrix(n_states: int, cap: int, alpha: float, g: int,
                           with_generate: bool) -> np.ndarray:
    """Process-wide segment-matrix cache.

    The matrix depends only on ``(cap, alpha, g)``, not on the layout, so
    sweeps over many same-width configurations share entries — helped
    along by :func:`error_pmf` rounding ``cap`` up to a power of two.
    Callers must treat the returned array as read-only.
    """
    return _segment_matrix(n_states, cap, alpha, g, with_generate)


def _normalize_profile(
    width: int, bit_one: Optional[Sequence[float]]
) -> Tuple[float, ...]:
    """Validate a per-bit one-probability profile (None means uniform)."""
    if bit_one is None:
        return (0.5,) * width
    profile = tuple(map(float, bit_one))
    if len(profile) != width:
        raise ValueError(
            f"bit_one has {len(profile)} entries for width {width}")
    if min(profile) < 0.0 or max(profile) > 1.0:
        bad = next(a for a in profile if not 0.0 <= a <= 1.0)
        raise ValueError(f"bit probability {bad} outside [0, 1]")
    return profile


def error_pmf(
    width: int,
    windows: Sequence[object],
    truncation: int = 0,
    bit_one: Optional[Sequence[float]] = None,
    max_support: int = MAX_SUPPORT,
    static_kind: Optional[str] = None,
    rectified: Sequence[int] = (),
) -> ErrorPMF:
    """Exact signed error PMF of a window layout.

    Args:
        width: operand width N.
        windows: window layout (``WindowSpec`` or ``SpeculativeWindow``
            objects — anything exposing low/high/result_low/result_high/
            length/prediction_bits).
        truncation: fixed-approximation low bits (LOA-style), 0 for none.
        bit_one: per-bit probability that an operand bit is one (the
            same profile applies to both operands, bits independent).
            ``None`` means uniform (0.5 everywhere).
        max_support: raise :class:`AnalyticUnsupported` if the tracked
            error support would exceed this many values.
        static_kind: gate rule of the fixed low part — ``"or"`` (LOA,
            the default when ``truncation`` is set) or ``"hoeraa"``.
        rectified: indices into ``windows`` whose §3.3 flags a rectify
            stage adds back into the sum (incompatible with truncation,
            mirroring the IR's validation).
    """
    profile = _normalize_profile(width, bit_one)
    rect = tuple(int(i) for i in rectified)
    if truncation == 0:
        static_kind = None
    elif static_kind is None:
        static_kind = "or"
    if rect and truncation:
        raise ValueError("rectified windows require a truncation-free layout")
    plan = _compile_plan(width, tuple(windows), truncation, profile,
                         max_support, static_kind, rect)
    return _execute_plan(width, plan)


def _compile_plan(
    width: int,
    windows: Tuple[object, ...],
    truncation: int,
    bit_one: Tuple[float, ...],
    max_support: int,
    static_kind: Optional[str] = None,
    rectified: Tuple[int, ...] = (),
) -> Tuple[Tuple[int, ...], Tuple[Tuple, ...], int, int]:
    """Symbolic pass: plan a layout's DP as ``(errors, ops, cap, n_states)``.

    The plan is a pure function of its arguments and holds no probability
    mass, so callers may compile once and replay many times (see
    :func:`adder_error_pmf`).
    """
    schedule = _emission_schedule(windows, truncation, rectified)
    if not schedule and truncation == 0:
        return ((0,), (), 1, 4)

    cap = max((threshold for entries in schedule.values()
               for threshold, _ in entries), default=0)
    cap = max(cap, 1)
    if cap & (cap - 1):
        # Round the saturation point up to a power of two: a few spare
        # states, but the segment matrices of a sweep's many
        # configurations collide in _cached_segment_matrix.
        cap = 1 << cap.bit_length()
    n_states = 2 * (cap + 1)  # state index = carry * (cap + 1) + run

    # -- symbolic pass -------------------------------------------------------
    #
    # Walk the event bits only, tracking per error value an upper bound on
    # its trailing propagate run (-1 == carry-1 block certainly empty).
    # That is enough to know which rows an emission *can* move, so the
    # full support and every emission's index plan are known before any
    # probability mass is touched; rows whose bound is loose just move
    # zero mass in the numeric replay.
    errors: List[int] = [0]
    index: Dict[int, int] = {0: 0}
    maxrun: List[int] = [-1]
    ops: List[Tuple] = []

    def row(e: int) -> int:
        r = index.get(e)
        if r is None:
            if len(errors) >= max_support:
                raise AnalyticUnsupported(
                    f"error support exceeds {max_support} values; layout is "
                    "too irregular for the analytic backend")
            r = len(errors)
            index[e] = r
            errors.append(e)
            maxrun.append(-1)
        return r

    def matrix(alpha: float, g: int, with_generate: bool = True) -> np.ndarray:
        return _cached_segment_matrix(n_states, cap, alpha, g, with_generate)

    def advance_gap(start: int, stop: int) -> None:
        """Plan the event-free bits [start, stop) as segment matmuls."""
        i = start
        while i < stop:
            j = i + 1
            while j < stop and bit_one[j] == bit_one[i]:
                j += 1
            g = j - i
            ops.append(("mat", matrix(bit_one[i], g)))
            for r in range(len(maxrun)):
                grown = maxrun[r] + g if maxrun[r] >= 0 else g - 1
                maxrun[r] = min(cap, grown)
            i = j

    event_bits = sorted(set(schedule) | set(range(min(truncation, width))))
    pos = 0
    for bit in event_bits:
        if bit < truncation:
            if bit > pos:
                advance_gap(pos, bit)
            # Generate under the truncation: the OR'd result bit stays at
            # one while the exact sum bit drops to zero, costing 2**bit.
            # HOERAA's top static bit is a half-adder sum instead of an
            # OR, so its generate branch additionally drops the bit
            # itself — the loss doubles to 2**(bit+1).  Distinct errors
            # shift to distinct errors, so the target rows are unique and
            # a direct indexed add is safe.
            delta = 1 << bit
            if static_kind == "hoeraa" and bit == truncation - 1:
                delta = 1 << (bit + 1)
            alpha = bit_one[bit]
            n0 = len(errors)
            dst = [row(errors[r] - delta) for r in range(n0)]
            ops.append(("tbit", matrix(alpha, 1, with_generate=False), n0,
                        np.asarray(dst, dtype=np.intp), alpha * alpha))
            for r in range(n0):
                maxrun[r] = min(cap, maxrun[r] + 1) if maxrun[r] >= 0 else -1
            for d in dst:
                maxrun[d] = max(maxrun[d], 0)
        else:
            # The bit's own transition is an ordinary segment bit: fold it
            # into the preceding gap so the pair plans as one matmul.
            advance_gap(pos, bit + 1)
        entries = schedule.get(bit, ())
        j = 0
        while j < len(entries):
            threshold, delta = entries[j]
            # Peephole: a wrap (t1, +d) chased at the same bit by the next
            # window's miss (t2, -d) with t2 <= t1 composes to a pure range
            # move — every row's columns [t2, t1-1] shift to error - d and
            # columns >= t1 stay put (the wrapped mass is re-missed in
            # full).  Fusing skips the transient wrap rows entirely.
            if j + 1 < len(entries):
                t2, d2 = entries[j + 1]
                if d2 == -delta and t2 <= threshold:
                    j += 2
                    if t2 == threshold:
                        continue  # empty range: the pair is a no-op
                    n0 = len(errors)
                    hot = [r for r in range(n0) if maxrun[r] >= t2]
                    if not hot:
                        continue
                    pre = [maxrun[r] for r in hot]
                    for r in hot:
                        if maxrun[r] < threshold:
                            maxrun[r] = t2 - 1
                    dst = []
                    for r, peak in zip(hot, pre):
                        d = row(errors[r] + d2)
                        maxrun[d] = max(maxrun[d], min(peak, threshold - 1))
                        dst.append(d)
                    ops.append(("emit", np.asarray(hot, dtype=np.intp),
                                np.asarray(dst, dtype=np.intp),
                                cap + 1 + t2, cap + 1 + threshold))
                    continue
            j += 1
            n0 = len(errors)
            hot = [r for r in range(n0) if maxrun[r] >= threshold]
            if not hot:
                continue
            pre = [maxrun[r] for r in hot]
            for r in hot:
                maxrun[r] = threshold - 1  # -1 for threshold 0: block empty
            dst = []
            for r, peak in zip(hot, pre):
                d = row(errors[r] + delta)
                maxrun[d] = max(maxrun[d], peak)
                dst.append(d)
            ops.append(("emit", np.asarray(hot, dtype=np.intp),
                        np.asarray(dst, dtype=np.intp),
                        cap + 1 + threshold, n_states))
        pos = bit + 1
    # Segment matmuls are row-stochastic, so anything after the last
    # emission preserves every row's mass and cannot change the PMF.
    while ops and ops[-1][0] == "mat":
        ops.pop()
    return (tuple(errors), tuple(ops), cap, n_states)


def _execute_plan(
    width: int,
    plan: Tuple[Tuple[int, ...], Tuple[Tuple, ...], int, int],
) -> ErrorPMF:
    """Numeric pass: replay a compiled plan into the error PMF."""
    errors, ops, cap, n_states = plan
    probs = np.zeros((len(errors), n_states), dtype=np.float64)
    probs[0, 0] = 1.0  # carry 0, run 0, error 0
    first = True
    for op in ops:
        tag = op[0]
        if tag == "mat":
            if first:
                # Still the initial point mass: the product is one row.
                probs[0] = op[1][0]
                first = False
            else:
                probs = probs @ op[1]
        elif tag == "emit":
            _, src, dst, lo, hi = op
            moved = probs[src, lo:hi]
            probs[src, lo:hi] = 0.0
            probs[dst, lo:hi] += moved
            first = False
        else:  # "tbit": generate mass is pre-transition, lands post.
            _, M, n0, dst, rho_g = op
            gen = rho_g * probs[:n0].sum(axis=1)
            probs = probs @ M
            probs[dst, cap + 1] += gen
            first = False
    mass = probs.sum(axis=1)
    pairs = sorted((e, float(p)) for e, p in zip(errors, mass) if p > 0.0)
    return ErrorPMF(
        width=width,
        support=tuple(e for e, _ in pairs),
        probabilities=tuple(p for _, p in pairs),
    )


def adder_error_pmf(
    adder,
    bit_one: Optional[Sequence[float]] = None,
    max_support: int = MAX_SUPPORT,
) -> ErrorPMF:
    """Exact error PMF of a supported adder model.

    Raises :class:`AnalyticUnsupported` when the adder is not purely
    block-based (see :func:`analytic_layout`).

    The symbolic plan depends only on the (immutable) layout and the bit
    profile, so it is memoised on the adder instance per profile; repeat
    evaluations of the same configuration pay only the numeric replay.
    """
    layout = analytic_layout(adder)
    if layout is None:
        raise AnalyticUnsupported(
            f"adder {getattr(adder, 'name', adder)!r} is not a pure "
            "block-based windowed adder; its arithmetic cannot be derived "
            "from a window layout")
    width, windows, truncation, static_kind, rectified = layout
    profile = _normalize_profile(width, bit_one)
    plans = getattr(adder, "_analytic_plans", None)
    if plans is None:
        plans = {}
        try:
            adder._analytic_plans = plans
        except (AttributeError, TypeError):
            pass
    key = (profile, max_support)
    plan = plans.get(key)
    if plan is None:
        plan = _compile_plan(width, tuple(windows), truncation, profile,
                             max_support, static_kind, rectified)
        plans[key] = plan
    return _execute_plan(width, plan)
