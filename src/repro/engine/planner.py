"""Deterministic shard planning.

The plan for a request depends only on the request (never on worker
count or chunking), which is the engine's determinism guarantee:

* **Monte-Carlo** — samples are split into canonical shards of
  ``shard_samples`` each; shard ``i`` draws from
  ``SeedSequence(entropy, spawn_key=(i,))`` where ``entropy`` is the
  request seed.  The same request therefore produces the same operand
  stream per shard at any ``jobs``/``chunk`` setting.
* **Exhaustive** — operand value rows are split into blocks sized so a
  shard evaluates about :data:`TARGET_PAIRS_PER_SHARD` pairs.
* **Fixed** — precomputed output arrays are sliced into
  :data:`FIXED_SHARD_SIZE` element blocks.

``group_shards`` batches shards into executor tasks; grouping affects
scheduling only, never results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

#: Canonical Monte-Carlo shard size (part of the determinism contract:
#: changing it changes which RNG stream draws which sample).
DEFAULT_SHARD_SAMPLES = 1 << 14

#: Pair budget per exhaustive shard (a width-W shard covers
#: ``max(1, TARGET_PAIRS_PER_SHARD >> W)`` rows of the operand grid).
TARGET_PAIRS_PER_SHARD = 1 << 20

#: Elements per fixed-mode shard.
FIXED_SHARD_SIZE = 1 << 18


@dataclass(frozen=True)
class Shard:
    """One independently evaluable unit of an :class:`EvalRequest`.

    ``start``/``count`` are samples for Monte-Carlo and fixed mode, and
    operand-grid rows for exhaustive mode.  ``entropy`` is the root seed
    material shared by every shard of a Monte-Carlo plan; the shard's own
    stream is ``SeedSequence(entropy, spawn_key=(index,))``.
    """

    index: int
    start: int
    count: int
    entropy: Optional[int] = None

    def seed_sequence(self) -> np.random.SeedSequence:
        if self.entropy is None:
            raise ValueError("shard has no RNG entropy (not a Monte-Carlo shard)")
        return np.random.SeedSequence(self.entropy, spawn_key=(self.index,))


def plan_monte_carlo(samples: int, seed: Optional[int],
                     shard_samples: int = DEFAULT_SHARD_SAMPLES) -> List[Shard]:
    """Split ``samples`` draws into canonical deterministic shards."""
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    if shard_samples <= 0:
        raise ValueError(f"shard_samples must be positive, got {shard_samples}")
    # SeedSequence(seed) resolves None to fresh OS entropy, exactly like
    # default_rng(None) did on the legacy path.
    entropy = np.random.SeedSequence(seed).entropy
    shards: List[Shard] = []
    start = 0
    index = 0
    while start < samples:
        count = min(shard_samples, samples - start)
        shards.append(Shard(index=index, start=start, count=count,
                            entropy=entropy))
        start += count
        index += 1
    return shards


def plan_exhaustive(width: int) -> List[Shard]:
    """Split the 2^W × 2^W operand grid into canonical row blocks."""
    size = 1 << width
    rows_per_shard = max(1, TARGET_PAIRS_PER_SHARD // size)
    shards: List[Shard] = []
    index = 0
    for start in range(0, size, rows_per_shard):
        shards.append(Shard(index=index, start=start,
                            count=min(rows_per_shard, size - start)))
        index += 1
    return shards


def plan_fixed(total: int, shard_size: int = FIXED_SHARD_SIZE) -> List[Shard]:
    """Slice ``total`` precomputed outputs into canonical blocks."""
    if total <= 0:
        raise ValueError(f"total must be positive, got {total}")
    shards: List[Shard] = []
    index = 0
    for start in range(0, total, shard_size):
        shards.append(Shard(index=index, start=start,
                            count=min(shard_size, total - start)))
        index += 1
    return shards


def group_shards(shards: Sequence[Shard],
                 per_task: int) -> List[List[Shard]]:
    """Batch shards into executor tasks of at most ``per_task`` shards.

    Purely a scheduling decision — each shard is still evaluated with its
    own seed stream and merged in index order.
    """
    per_task = max(1, per_task)
    return [list(shards[i:i + per_task])
            for i in range(0, len(shards), per_task)]
