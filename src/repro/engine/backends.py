"""Pluggable evaluation backends behind :meth:`Engine.evaluate`.

A *backend* answers an :class:`~repro.engine.api.EvalRequest` with an
:class:`~repro.engine.api.EvalResult`; the engine owns scheduling,
caching and telemetry plumbing, the backend owns the mathematics:

* ``sampling`` — the sharded simulator (Monte-Carlo / exhaustive /
  fixed replay) that has always backed the engine.  Supports every
  request.
* ``analytic`` — the exact error-PMF solver of
  :mod:`repro.engine.analytic`.  Supports block-based adders (anything
  carrying an :class:`~repro.spec.ir.AdderSpec`, plus non-overridden
  :class:`~repro.adders.base.WindowedSpeculativeAdder` subclasses) in
  Monte-Carlo mode with a per-bit-independent distribution, or in
  exhaustive mode; ``fixed`` replay has no analytic form.
* ``compiled`` — the same sharded simulator, but every sum computed by
  the bit-sliced gate-level kernel of :mod:`repro.rtl.compile` instead
  of the behavioural model.  Supports any netlist-bearing adder outside
  ``fixed`` mode.

Requests name their backend (``EvalRequest.backend``); the pseudo-name
``auto`` resolves to ``analytic`` when the request is solvable and falls
back to ``sampling``.  Asking explicitly for a backend that cannot serve
the request raises :class:`~repro.engine.analytic.AnalyticUnsupported`
rather than silently degrading.

Third-party backends plug in through :func:`register_backend`; the
registry key becomes a valid ``EvalRequest.backend`` value and is folded
into every cache key via :func:`repro.engine.api.request_key_material`.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Dict, Optional, Protocol, runtime_checkable

from repro import obs
from repro.engine import api
from repro.engine.analytic import (
    ANALYTIC_VERSION,
    AnalyticUnsupported,
    ErrorPMF,
    adder_error_pmf,
    analytic_layout,
    bit_probability_profile,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.api import EvalRequest, EvalResult
    from repro.engine.core import Engine

__all__ = [
    "BACKENDS",
    "AnalyticBackend",
    "Backend",
    "CompiledBackend",
    "SamplingBackend",
    "register_backend",
    "resolve_backend",
]


@runtime_checkable
class Backend(Protocol):
    """What the engine needs from an evaluation backend."""

    name: str

    def supports(self, request: "EvalRequest") -> bool:
        """Can this backend answer the request exactly as posed?"""
        ...

    def evaluate(self, request: "EvalRequest",
                 engine: "Engine") -> "EvalResult":
        """Answer the request, using the engine for cache/jobs plumbing."""
        ...


class SamplingBackend:
    """The sharded simulator — universal fallback for every request."""

    name = "sampling"

    def supports(self, request: "EvalRequest") -> bool:
        return True

    def evaluate(self, request: "EvalRequest",
                 engine: "Engine") -> "EvalResult":
        return engine._run_sampling(request)


class AnalyticBackend:
    """Exact error-PMF evaluation for block-based adders.

    The PMF itself is cached as a single entry under the request's
    backend-qualified digest (see
    :func:`repro.engine.api.request_key_material`), so a warm cache
    answers repeat analytic requests without re-running the DP — and can
    never be confused with sampled shard partials.
    """

    name = "analytic"

    def supports(self, request: "EvalRequest") -> bool:
        return self.why_unsupported(request) is None

    def why_unsupported(self, request: "EvalRequest") -> Optional[str]:
        """Human-readable reason the request has no analytic form (or None)."""
        if request.mode == "fixed":
            return ("fixed mode replays recorded output arrays; there is "
                    "nothing to solve analytically")
        if analytic_layout(request.adder) is None:
            return (f"adder {request.adder.name!r} is not a pure block-based "
                    "windowed adder")
        if (request.mode == "monte_carlo" and request.distribution is not None
                and request.distribution.bit_probabilities() is None):
            return (f"{type(request.distribution).__name__} has no per-bit "
                    "independent form")
        return None

    def evaluate(self, request: "EvalRequest",
                 engine: "Engine") -> "EvalResult":
        start = time.perf_counter()
        reason = self.why_unsupported(request)
        if reason is not None:
            raise AnalyticUnsupported(reason)
        cacheable = engine.cache is not None and engine._cacheable(request)
        digest = None
        pmf: Optional[ErrorPMF] = None
        cached = False
        if cacheable:
            material = api.request_key_material(request, backend=self.name)
            digest = api.key_digest(material)
            payload = engine.cache.load_payload(digest)
            if (payload is not None
                    and payload.get("analytic_v") == ANALYTIC_VERSION):
                try:
                    pmf = ErrorPMF.from_dict(payload["pmf"])
                    cached = True
                except (KeyError, TypeError, ValueError):
                    pmf = None
        if pmf is None:
            profile = bit_probability_profile(
                request.distribution, request.width, request.mode)
            with obs.span("engine.analytic.solve"):
                pmf = adder_error_pmf(request.adder, bit_one=profile)
            if cacheable:
                engine.cache.store_payload(digest, {
                    "version": api.METRICS_VERSION,
                    "analytic_v": ANALYTIC_VERSION,
                    "pmf": pmf.to_dict(),
                })
        obs.observe("engine.analytic.support", float(len(pmf.support)),
                    bounds=obs.SIZE_BOUNDS)
        from repro.engine.core import _error_distance_bounds

        _, max_bound = _error_distance_bounds(request.adder)
        stats = pmf.to_error_stats(maa_thresholds=request.maa_thresholds,
                                   max_ed_bound=max_bound)
        return api.EvalResult(
            stats=stats,
            mode=request.mode,
            adder_name=request.adder.name,
            adder_fingerprint=api.fingerprint_adder(request.adder),
            shards_total=1,
            shards_executed=0 if cached else 1,
            shards_cached=1 if cached else 0,
            jobs=1,
            elapsed_s=time.perf_counter() - start,
        )


class CompiledBackend:
    """Sampling over the bit-sliced compiled netlist kernel.

    Substitutes a :class:`repro.rtl.compile.CompiledAdder` for the
    behavioural model and reuses the entire sharded sampling pipeline —
    shard planning, per-shard seed streams, partial merging, the on-disk
    cache — so results are ``--jobs``-invariant exactly like plain
    sampling.  Shard partials are keyed under ``backend="compiled"`` (and
    the proxy's own ``compiled/v…`` fingerprint), so they can never be
    confused with behavioural sampling partials.
    """

    name = "compiled"

    def supports(self, request: "EvalRequest") -> bool:
        return self.why_unsupported(request) is None

    def why_unsupported(self, request: "EvalRequest") -> Optional[str]:
        """Why the request cannot run on the compiled kernel (or None)."""
        if request.mode == "fixed":
            return ("fixed mode replays recorded output arrays; there is "
                    "no netlist to simulate")
        from repro.rtl.compile import _netlist_of

        if _netlist_of(request.adder) is None:
            return (f"adder {request.adder.name!r} has no gate-level "
                    "netlist to compile")
        return None

    def evaluate(self, request: "EvalRequest",
                 engine: "Engine") -> "EvalResult":
        reason = self.why_unsupported(request)
        if reason is not None:
            raise AnalyticUnsupported(reason)
        from repro.rtl.compile import CompiledAdder

        proxied = dataclasses.replace(request,
                                      adder=CompiledAdder(request.adder))
        return engine._run_sampling(proxied, backend_name=self.name)


#: Registered backends by name; ``EvalRequest.backend`` validates against
#: this mapping (plus the ``auto`` pseudo-name).
BACKENDS: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add a backend to the registry (overwriting any same-named one)."""
    if backend.name == api.AUTO_BACKEND:
        raise ValueError(f"{api.AUTO_BACKEND!r} is reserved for deferred "
                         "backend resolution")
    BACKENDS[backend.name] = backend
    return backend


register_backend(SamplingBackend())
register_backend(AnalyticBackend())
register_backend(CompiledBackend())


def resolve_backend(request: "EvalRequest") -> Backend:
    """Map a request to the backend that will answer it.

    ``auto`` prefers ``analytic`` whenever it supports the request and
    falls back to ``sampling``; a named backend must support the request
    or :class:`AnalyticUnsupported` is raised.
    """
    if request.backend == api.AUTO_BACKEND:
        analytic = BACKENDS["analytic"]
        if analytic.supports(request):
            return analytic
        return BACKENDS["sampling"]
    backend = BACKENDS[request.backend]
    if not backend.supports(request):
        why = getattr(backend, "why_unsupported", None)
        reason = why(request) if callable(why) else None
        detail = f": {reason}" if reason else ""
        raise AnalyticUnsupported(
            f"backend {backend.name!r} cannot evaluate this request{detail}")
    return backend
