"""Public request/result types of the evaluation engine.

Every accuracy evaluation in the library — Monte-Carlo sampling,
exhaustive enumeration, or scoring a pair of precomputed output arrays —
is expressed as one :class:`EvalRequest` and answered with one
:class:`EvalResult`.  Convenience helpers such as
:func:`repro.metrics.exhaustive.exhaustive_stats` are thin wrappers that
build a request, hand it to the default :class:`~repro.engine.Engine`
and unpack the result.

``METRICS_VERSION`` participates in every cache key: bump it whenever the
semantics of :class:`~repro.metrics.error_metrics.ErrorStats` or the
shard partials change, and every previously cached shard is invalidated
at once.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.error_metrics import TABLE1_MAA_THRESHOLDS, ErrorStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adders.base import AdderModel
    from repro.utils.distributions import OperandDistribution

#: Version of the metric definitions baked into cached shard partials.
METRICS_VERSION = 1

#: Evaluation modes understood by the engine.
MODES = ("monte_carlo", "exhaustive", "fixed")

#: The backend pseudo-name that defers the sampling/analytic choice to
#: :func:`repro.engine.backends.resolve_backend`.
AUTO_BACKEND = "auto"


def fingerprint_adder(adder: "AdderModel") -> str:
    """Stable identity of an adder for cache keying.

    Prefers the adder's own :meth:`~repro.adders.base.AdderModel.fingerprint`
    and falls back to class/width/name for foreign model objects.
    """
    fp = getattr(adder, "fingerprint", None)
    if callable(fp):
        return str(fp())
    return f"{type(adder).__module__}.{type(adder).__qualname__}:w{adder.width}:{adder.name}"


def fingerprint_distribution(dist: Optional["OperandDistribution"]) -> str:
    """Stable identity of an operand distribution (``uniform`` if None)."""
    if dist is None:
        return "uniform:default"
    fp = getattr(dist, "fingerprint", None)
    if callable(fp):
        return str(fp())
    return f"{type(dist).__module__}.{type(dist).__qualname__}:w{dist.width}"


def digest_arrays(*arrays: np.ndarray) -> str:
    """Content hash of the fixed-mode output arrays."""
    h = hashlib.sha256()
    for arr in arrays:
        arr = np.ascontiguousarray(np.asarray(arr, dtype=np.int64))
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class EvalRequest:
    """One unit of evaluation work for the engine.

    Attributes:
        adder: adder model under evaluation.
        mode: ``monte_carlo`` (random operand pairs), ``exhaustive``
            (every operand pair of the adder's width) or ``fixed``
            (score the supplied ``approx_values``/``exact_reference``).
        samples: Monte-Carlo sample count (ignored for other modes).
        seed: root RNG seed; per-shard streams are spawned from it so the
            merged result is independent of worker count and chunking.
        distribution: operand distribution (default: uniform).
        maa_thresholds: MAA acceptance thresholds to evaluate.
        chunk: execution batching hint — maximum samples handed to one
            worker task.  Never affects the result, only scheduling.
        approx_values / exact_reference: fixed-mode output arrays.
        backend: evaluation backend — a name registered in
            :data:`repro.engine.backends.BACKENDS` (``sampling`` runs the
            sharded simulator, ``analytic`` solves the exact error PMF)
            or ``auto``, which picks ``analytic`` whenever the request is
            a block-based spec it can solve and falls back to sampling
            otherwise.
    """

    adder: "AdderModel"
    mode: str = "monte_carlo"
    samples: Optional[int] = None
    seed: Optional[int] = 2015
    distribution: Optional["OperandDistribution"] = None
    maa_thresholds: Tuple[float, ...] = TABLE1_MAA_THRESHOLDS
    chunk: Optional[int] = None
    approx_values: Optional[np.ndarray] = None
    exact_reference: Optional[np.ndarray] = None
    backend: str = "sampling"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODES}")
        if self.backend != AUTO_BACKEND:
            from repro.engine.backends import BACKENDS

            if self.backend not in BACKENDS:
                known = (*sorted(BACKENDS), AUTO_BACKEND)
                raise ValueError(
                    f"unknown backend {self.backend!r}; expected one of {known}")
        object.__setattr__(self, "maa_thresholds", tuple(self.maa_thresholds))
        if self.mode == "monte_carlo":
            if self.samples is None or self.samples <= 0:
                raise ValueError("monte_carlo mode needs a positive sample count")
        if self.mode == "fixed":
            if self.approx_values is None or self.exact_reference is None:
                raise ValueError(
                    "fixed mode needs both approx_values and exact_reference"
                )
            a = np.asarray(self.approx_values)
            e = np.asarray(self.exact_reference)
            if a.shape != e.shape:
                raise ValueError("approximate and exact outputs must align")
            if a.size == 0:
                raise ValueError("no samples provided")

    @property
    def width(self) -> int:
        return self.adder.width

    # -- constructors -------------------------------------------------------
    #
    # The classmethods below are the supported way to build requests for
    # the three modes; they replaced the old ``Engine.monte_carlo()`` /
    # ``Engine.exhaustive()`` convenience methods (removed after their
    # deprecation window — the engine raises TypeError pointing here)
    # so that request construction is independent of any engine instance.

    @classmethod
    def monte_carlo(
        cls,
        adder: "AdderModel",
        samples: int,
        *,
        seed: Optional[int] = 2015,
        distribution: Optional["OperandDistribution"] = None,
        maa_thresholds: Sequence[float] = TABLE1_MAA_THRESHOLDS,
        chunk: Optional[int] = None,
        backend: str = "sampling",
    ) -> "EvalRequest":
        """Request for ``samples`` random operand pairs."""
        return cls(adder=adder, mode="monte_carlo", samples=samples,
                   seed=seed, distribution=distribution,
                   maa_thresholds=tuple(maa_thresholds), chunk=chunk,
                   backend=backend)

    @classmethod
    def exhaustive(
        cls,
        adder: "AdderModel",
        *,
        maa_thresholds: Sequence[float] = TABLE1_MAA_THRESHOLDS,
        chunk: Optional[int] = None,
        backend: str = "sampling",
    ) -> "EvalRequest":
        """Request covering every operand pair of the adder's width."""
        return cls(adder=adder, mode="exhaustive",
                   maa_thresholds=tuple(maa_thresholds), chunk=chunk,
                   backend=backend)

    @classmethod
    def fixed(
        cls,
        adder: "AdderModel",
        approx_values: np.ndarray,
        exact_reference: np.ndarray,
        *,
        maa_thresholds: Sequence[float] = TABLE1_MAA_THRESHOLDS,
        chunk: Optional[int] = None,
    ) -> "EvalRequest":
        """Request scoring precomputed approximate/exact output arrays.

        Fixed mode replays recorded data, so it has no analytic form and
        always runs on the sampling backend.
        """
        return cls(adder=adder, mode="fixed", approx_values=approx_values,
                   exact_reference=exact_reference,
                   maa_thresholds=tuple(maa_thresholds), chunk=chunk)


@dataclass(frozen=True)
class EvalResult:
    """Merged statistics plus the engine's execution trace for one request.

    ``shards_executed + shards_cached == shards_total`` always holds; a
    fully warm cache shows ``shards_executed == 0``.
    """

    stats: ErrorStats
    mode: str
    adder_name: str
    adder_fingerprint: str
    shards_total: int
    shards_executed: int
    shards_cached: int
    jobs: int
    elapsed_s: float
    shard_timings: Tuple[float, ...] = field(default_factory=tuple)

    @property
    def cache_hit_rate(self) -> float:
        if self.shards_total == 0:
            return 0.0
        return self.shards_cached / self.shards_total

    def to_json(self) -> dict:
        """JSON-safe summary (deterministic fields only; no timings)."""
        stats = self.stats
        return {
            "mode": self.mode,
            "adder": self.adder_name,
            "samples": stats.samples,
            "error_rate": stats.error_rate,
            "med": stats.med,
            "ned": stats.ned,
            "mred": stats.mred,
            "max_ed_observed": stats.max_ed_observed,
            "max_ed_bound": stats.max_ed_bound,
            "acc_amp_avg": stats.acc_amp_avg,
            "acc_inf_avg": stats.acc_inf_avg,
            "maa_acceptance": {str(t): v for t, v in
                               sorted(stats.maa_acceptance.items())},
            "shards": self.shards_total,
        }


def request_key_material(request: EvalRequest,
                         backend: str = "sampling") -> dict:
    """The request-level half of a shard cache key (JSON-safe dict).

    ``backend`` is the *resolved* backend name (an ``auto`` request keys
    under whichever backend actually answers it), so analytic PMFs and
    sampled partials can never collide; analytic entries additionally
    carry :data:`~repro.engine.analytic.ANALYTIC_VERSION` so a change to
    the DP formulation invalidates them without touching sampled shards.
    """
    material = {
        "v": METRICS_VERSION,
        "backend": backend,
        "mode": request.mode,
        "adder": fingerprint_adder(request.adder),
        "thresholds": [float(t) for t in request.maa_thresholds],
    }
    if backend == "analytic":
        from repro.engine.analytic import ANALYTIC_VERSION

        material["analytic_v"] = ANALYTIC_VERSION
    if request.mode == "monte_carlo":
        material["dist"] = fingerprint_distribution(request.distribution)
        material["samples"] = int(request.samples or 0)
    if request.mode == "fixed":
        material["data"] = digest_arrays(request.approx_values,
                                         request.exact_reference)
    return material


def key_digest(material: dict) -> str:
    """Content address of a cache key dict."""
    return hashlib.sha256(
        json.dumps(material, sort_keys=True).encode()
    ).hexdigest()


def request_digest(request: EvalRequest,
                   backend: str = "sampling") -> Optional[str]:
    """Full result identity of a request under a *resolved* backend.

    Unlike the shard-level cache keys this folds the root seed in as
    well, so two requests share a digest iff the engine is guaranteed to
    merge them to the same :class:`EvalResult` statistics — the
    coalescing key of the :mod:`repro.serve` daemon.  Returns None when
    the request has no stable identity (``monte_carlo`` with a None seed
    draws fresh OS entropy per evaluation, so nothing may be coalesced
    or reused).
    """
    if request.mode == "monte_carlo" and request.seed is None:
        return None
    material = request_key_material(request, backend=backend)
    if request.mode == "monte_carlo":
        material["seed"] = int(request.seed)
    return key_digest(material)
