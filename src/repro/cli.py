"""Command-line interface: ``gear <command>`` (or ``python -m repro``).

Commands mirror the paper's artefacts::

    gear info 12 4 4          # describe a GeAr configuration
    gear sweep 16 --r 4       # accuracy/delay/area sweep
    gear verilog 12 4 4       # emit synthesizable structural Verilog
    gear table1 | table2 | table3 | table4
    gear fig1 | fig7 | fig8 | fig9
    gear experiment <name>    # any artefact by registry name
    gear ablation
    gear verify               # cross-layer conformance harness
    gear spec list|show|lint  # the declarative AdderSpec catalog
    gear cache stats|clear    # shard-cache maintenance
    gear obs report t.jsonl   # re-summarize a saved telemetry trace
    gear serve --workers 4    # always-on evaluation service (docs/serve.md)
    gear client eval '{...}'  # query a running service

Every stochastic subcommand takes ``--samples`` and ``--seed``; every
subcommand that evaluates through :mod:`repro.engine` additionally takes
``--jobs N`` (process-parallel shard execution), ``--cache [DIR]``
(memoise completed shards on disk), ``--cache-size MB`` (oldest-first
pruning cap), ``--no-cache`` and ``--backend
{sampling,analytic,compiled,auto}`` (the evaluation backend;
``analytic`` solves the exact error PMF instead of simulating,
``compiled`` samples through the bit-sliced netlist kernel).  Results are bit-identical at any
``--jobs`` value, and ``--json`` output excludes scheduling details, so
JSON from ``--jobs 4`` is byte-identical to ``--jobs 1``.

``--trace PATH`` and ``--profile`` (accepted before or after any
subcommand) enable the :mod:`repro.obs` telemetry layer for the run: the
telemetry report is printed to *stderr* after the command — stdout stays
byte-identical with tracing on or off — and ``--trace`` additionally
saves the span log and merged :class:`~repro.obs.TelemetryFrame` as
JSONL for ``gear obs report``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.sweep import sweep_gear_configs, sweep_to_json
from repro.analysis.tables import format_table
from repro.core.error_model import (
    error_probability,
    error_probability_exact,
    max_error_distance,
    mean_error_distance_analytic,
)
from repro.core.coverage import classify_config
from repro.core.gear import GeArAdder, GeArConfig

#: Default root seed for stochastic subcommands (the paper's year).
DEFAULT_SEED = 2015


class CLIError(Exception):
    """A user-input error: printed to stderr, exits 2."""


def _package_version() -> str:
    """Installed distribution version, falling back to the source tree."""
    try:
        from importlib import metadata

        return metadata.version("repro")
    except Exception:
        from repro import __version__

        return __version__


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    from repro.engine import DEFAULT_CACHE_DIR

    group = parser.add_argument_group("evaluation engine")
    group.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for shard execution "
                       "(results are identical at any value; default: 1)")
    group.add_argument("--cache", nargs="?", const=DEFAULT_CACHE_DIR,
                       default=None, metavar="DIR",
                       help="memoise completed shards on disk "
                       f"(default dir: {DEFAULT_CACHE_DIR})")
    group.add_argument("--cache-size", type=float, default=None, metavar="MB",
                       help="shard-cache size cap in MiB; oldest entries are "
                       "pruned first (this run's shards are never evicted)")
    group.add_argument("--no-cache", action="store_true",
                       help="disable the shard cache even if --cache is given")
    # Validated against the live registry in _dispatch (not argparse
    # choices) so plug-in backends registered at import time are
    # accepted and a typo reports the actual registered names.
    group.add_argument("--backend", default="sampling", metavar="NAME",
                       help="evaluation backend: 'sampling' simulates, "
                       "'analytic' solves the exact error PMF, 'compiled' "
                       "samples through the bit-sliced netlist kernel, "
                       "'auto' prefers analytic when the adder supports it "
                       "(default: sampling)")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    # SUPPRESS keeps a subparser's (unset) defaults from clobbering values
    # the main parser already recorded, so the flags work in either
    # position: ``gear --trace t.jsonl sweep ...`` and ``gear sweep ...
    # --trace t.jsonl``.
    group = parser.add_argument_group("observability")
    group.add_argument("--trace", metavar="PATH", dest="trace",
                       default=argparse.SUPPRESS,
                       help="collect telemetry and save a JSONL trace "
                       "(report on stderr; stdout is unchanged)")
    group.add_argument("--profile", action="store_true", dest="profile",
                       default=argparse.SUPPRESS,
                       help="collect telemetry and print the report "
                       "to stderr after the command")


def _add_sampling_flags(parser: argparse.ArgumentParser,
                        samples_default: Optional[int] = None,
                        seed_default: Optional[int] = DEFAULT_SEED,
                        samples_help: str = "Monte-Carlo sample count") -> None:
    parser.add_argument("--samples", type=int, default=samples_default,
                        help=samples_help)
    seed_note = (f"default: {seed_default}" if seed_default is not None
                 else "default: experiment-specific")
    parser.add_argument("--seed", type=int, default=seed_default,
                        help=f"root RNG seed ({seed_note})")


def _engine_from_args(args: argparse.Namespace):
    from repro.engine import Engine, ShardCache

    cache = None if getattr(args, "no_cache", False) else getattr(args, "cache", None)
    size_mb = getattr(args, "cache_size", None)
    if cache is not None and size_mb is not None:
        cache = ShardCache(cache, max_bytes=int(size_mb * (1 << 20)))
    return Engine(jobs=getattr(args, "jobs", 1), cache=cache)


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_info(args: argparse.Namespace) -> int:
    strict = (args.n - args.r - args.p) % args.r == 0
    cfg = GeArConfig(args.n, args.r, args.p, allow_partial=not strict)
    adder = GeArAdder(cfg)
    print(cfg.describe())
    print(f"covers: {', '.join(classify_config(cfg))}")
    print(f"error probability (paper model): {error_probability(cfg):.8f}")
    print(f"error probability (exact DP)   : {error_probability_exact(cfg):.8f}")
    print(f"mean error distance (analytic) : {mean_error_distance_analytic(cfg):.4f}")
    print(f"max error distance             : {max_error_distance(cfg)}")
    print("windows (low..high -> result bits):")
    for i, w in enumerate(cfg.windows()):
        print(f"  sub-adder {i + 1}: [{w.high}:{w.low}] -> "
              f"S[{w.result_high}:{w.result_low}] (P={w.prediction_bits})")
    try:
        from repro.timing.fpga import characterize

        char = characterize(adder)
        print(f"FPGA model: delay={char.delay_ns:.3f} ns, LUTs={char.luts}, "
              f"gates={char.gates}, depth={char.logic_depth}")
    except ValueError:
        pass
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    results = sweep_gear_configs(
        args.n,
        r_values=[args.r] if args.r else None,
        with_hardware=not args.no_hardware,
        samples=args.samples,
        seed=args.seed,
        engine=engine,
        backend=getattr(args, "backend", "sampling"),
    )
    if args.json:
        _print_json(sweep_to_json(results, args.n))
        return 0
    headers = ["config", "k", "accuracy %", "MED", "NED", "delay ns", "LUTs"]
    rows = [
        [
            f"({r.r},{r.p})",
            r.k,
            f"{r.accuracy_pct:.4f}",
            f"{r.med:.3f}",
            f"{r.ned:.5f}",
            f"{r.delay_ns:.3f}" if r.delay_ns is not None else None,
            r.luts,
        ]
        for r in results
    ]
    if args.samples:
        headers += ["measured err", "measured MED"]
        for row, r in zip(rows, results):
            row.append(f"{r.measured_error_rate:.6f}")
            row.append(f"{r.measured_med:.3f}")
    print(
        format_table(
            headers,
            [tuple(row) for row in rows],
            title=f"GeAr design space, N={args.n}",
        )
    )
    return 0


def _cmd_verilog(args: argparse.Namespace) -> int:
    strict = (args.n - args.r - args.p) % args.r == 0
    config = GeArConfig(args.n, args.r, args.p, allow_partial=not strict)
    if args.hierarchical:
        from repro.rtl.hierarchy import emit_gear_hierarchical

        sys.stdout.write(emit_gear_hierarchical(config))
        return 0
    from repro.rtl.verilog import to_verilog

    netlist = GeArAdder(config).build_netlist()
    assert netlist is not None
    sys.stdout.write(to_verilog(netlist))
    return 0


def _run_experiment(name: str, args: argparse.Namespace) -> int:
    from repro.engine import use_engine
    from repro.experiments import EXPERIMENTS

    spec = EXPERIMENTS[name]
    engine = _engine_from_args(args)
    with use_engine(engine):
        result = spec.run(
            samples=getattr(args, "samples", None),
            seed=getattr(args, "seed", None),
            engine=engine,
            backend=getattr(args, "backend", None),
        )
    if getattr(args, "json", False):
        _print_json(result.to_json())
    else:
        print(spec.renderer(result))
    return 0


def _cmd_experiment(name: str):
    def handler(args: argparse.Namespace) -> int:
        return _run_experiment(name, args)

    return handler


def _cmd_experiment_named(args: argparse.Namespace) -> int:
    return _run_experiment(args.name, args)


def _cmd_motivation(args: argparse.Namespace) -> int:
    from repro.analysis.carrychain import (
        chain_coverage_table,
        expected_longest_chain,
        required_chain_for_coverage,
    )

    rows = []
    for n in (16, 32, 64, 128):
        coverage = chain_coverage_table(n, [8, 16])
        rows.append(
            (
                n,
                f"{expected_longest_chain(n):.2f}",
                f"{coverage[8]:.3e}",
                f"{coverage[16]:.3e}",
                required_chain_for_coverage(n, 1e-2),
                required_chain_for_coverage(n, 1e-4),
            )
        )
    print(
        format_table(
            ["N", "E[longest chain]", "P(chain>8)", "P(chain>16)",
             "L @1% miss", "L @0.01% miss"],
            rows,
            title="§1 motivation — longest carry chains are short (uniform operands)",
        )
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_all
    from repro.engine import use_engine

    engine = _engine_from_args(args)
    with use_engine(engine):
        paths = export_all(args.dir, artefacts=args.only,
                           fmt="json" if args.json else "csv",
                           engine=engine)
    for name, path in sorted(paths.items()):
        print(f"{name}: {path}")
    return 0


def _cmd_spectrum(args: argparse.Namespace) -> int:
    from repro.engine import use_engine
    from repro.metrics.spectrum import error_spectrum, spectrum_table

    strict = (args.n - args.r - args.p) % args.r == 0
    adder = GeArAdder(GeArConfig(args.n, args.r, args.p,
                                 allow_partial=not strict))
    with use_engine(_engine_from_args(args)):
        spec = error_spectrum(adder, samples=args.samples, seed=args.seed)
    print(spectrum_table(spec))
    print("\nper-window miss rates and error mass:")
    for i, (rate, mass) in enumerate(
        zip(spec.window_miss_rate, spec.window_error_mass), start=1
    ):
        print(f"  speculative sub-adder {i}: miss rate {rate:.6f}, "
              f"error mass {mass:.2f}")
    dominant = spec.dominant_window()
    if dominant is not None:
        print(f"dominant error source: speculative sub-adder {dominant} "
              "(correct this one first)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    path = write_report(args.out, quick=args.quick)
    print(f"report written to {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.rtl.lint import (
        Severity,
        builder_matrix,
        get_rule,
        lint_netlist,
        lint_verilog,
        registered_rules,
    )
    from repro.rtl.verilog_parser import VerilogSyntaxError

    if args.list_rules:
        for rule in registered_rules():
            print(f"{rule.id:20s} {rule.severity.label:8s} {rule.description}")
        return 0
    if args.target is None:
        print("error: a lint target is required (builder name, 'all', or a "
              ".v file)", file=sys.stderr)
        return 2

    fail_on = (None if args.fail_on == "never"
               else Severity.from_label(args.fail_on))
    suppress = tuple(args.suppress or ())
    try:
        for rid in suppress:
            get_rule(rid)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Resolve targets to (label, netlist) pairs.
    try:
        if args.target == "all":
            if args.params:
                print("error: 'all' takes no parameters", file=sys.stderr)
                return 2
            targets = list(builder_matrix())
        elif args.target.endswith(".v") or Path(args.target).is_file():
            if args.params:
                print("error: file targets take no parameters", file=sys.stderr)
                return 2
            try:
                source = Path(args.target).read_text()
            except OSError as exc:
                print(f"error: cannot read {args.target}: {exc}", file=sys.stderr)
                return 2
            targets = [(args.target, lint_verilog(source, suppress=suppress))]
        else:
            from repro.rtl.builders import build_named

            targets = [(" ".join([args.target, *map(str, args.params)]),
                        build_named(args.target, *args.params))]
    except VerilogSyntaxError as exc:
        print(f"error: {args.target}: {exc}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from repro.rtl.netlist import Netlist
    from repro.rtl.opt import optimize

    reports = []
    for label, item in targets:
        if isinstance(item, Netlist):
            if args.opt:
                item = optimize(item)
            report = lint_netlist(item, suppress=suppress)
        else:  # already a LintReport (file target)
            report = item
        reports.append((label, report))

    failed = any(
        fail_on is not None and not report.ok(fail_on=fail_on)
        for _, report in reports
    )
    if args.json:
        payload = [dict(report.to_dict(), target=label)
                   for label, report in reports]
        print(_json.dumps(payload[0] if len(payload) == 1 else payload,
                          indent=2))
    else:
        for label, report in reports:
            lines = report.format_text().splitlines()
            if label != report.name:
                lines[0] = f"{label}: {lines[0].split(': ', 1)[1]}"
            print("\n".join(lines))
    return 1 if failed else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import (
        LAYERS,
        VerifyOptions,
        default_registry,
        summarize,
        verify_registry,
    )

    if args.list_adders:
        for key, entry in default_registry().items():
            print(f"{key:14s} {entry.kind:18s} {entry.description}")
        return 0

    try:
        options = VerifyOptions(
            width=args.width,
            layers=tuple(args.layer) if args.layer else LAYERS,
            seed=args.seed if args.seed is not None else DEFAULT_SEED,
            samples=args.samples if args.samples else 50_000,
            backend=getattr(args, "backend", "sampling"),
        )
        reports = verify_registry(
            adders=args.adder or None,
            options=options,
            engine=_engine_from_args(args),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not reports:
        print(f"error: no registered adder supports width {args.width}",
              file=sys.stderr)
        return 2

    if args.json:
        _print_json([report.to_json() for report in reports])
    else:
        print(summarize(reports))
    return 0 if all(report.ok for report in reports) else 1


def _cmd_spec(args: argparse.Namespace) -> int:
    from repro.spec.catalog import SPEC_CATALOG, catalog_spec

    if args.spec_command == "list":
        if args.json:
            payload = []
            for key, family in SPEC_CATALOG.items():
                width = max(args.width, family.min_width)
                try:
                    spec = family(width)
                    fingerprint = spec.fingerprint()
                    kind = spec.stage_tag()
                except ValueError:
                    # Family undefined at this width (e.g. parity rules).
                    width = fingerprint = None
                    kind = family(family.min_width).stage_tag()
                payload.append({
                    "key": key,
                    "description": family.description,
                    "kind": kind,
                    "min_width": family.min_width,
                    "width": width,
                    "fingerprint": fingerprint,
                })
            _print_json(payload)
            return 0
        for key, family in SPEC_CATALOG.items():
            kind = family(family.min_width).stage_tag()
            print(f"{key:14s} {kind:18s} w>={family.min_width:<3d} "
                  f"{family.description}")
        return 0

    if args.spec_command == "show":
        try:
            spec = catalog_spec(args.key, args.width)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            _print_json(spec.to_dict())
            return 0
        print(spec.describe())
        print(f"fingerprint: {spec.fingerprint()}")
        if spec.truncation:
            print(f"truncated OR part: S[{spec.truncation - 1}:0] = A | B")
        print("windows (low..high -> result bits):")
        rectified = set(spec.rectified_windows())
        for i, w in enumerate(spec.windows, start=1):
            if w.is_static:
                print(f"  window {i}: [{w.high}:{w.low}] -> "
                      f"S[{w.result_high}:{w.result_low}] (static, "
                      f"approx={w.approx})")
                continue
            tag = w.arch if w.pred == "fused" else f"{w.arch}+{w.pred}"
            rect = ", rectified" if i - 1 in rectified else ""
            print(f"  window {i}: [{w.high}:{w.low}] -> "
                  f"S[{w.result_high}:{w.result_low}] ({tag}, "
                  f"P={w.prediction_bits}{rect})")
        if spec.rectify is not None:
            taps = ", ".join(str(i + 1) for i in spec.rectified_windows())
            print(f"rectify ({spec.rectify.kind}): flags of windows "
                  f"[{taps}] added back into the sum")
        terms = spec.to_error_terms()
        ep = terms.error_probability()
        if ep is not None:
            print(f"error probability (exact DP): {ep:.8f}")
        print(f"max error distance          : {terms.max_error_distance()}")
        return 0

    # spec lint: compile each target's netlist and run the lint rules.
    # Targets are catalog families ('all' for every one) or paths to spec
    # JSON documents; malformed documents (unknown kind/approx/rectify
    # values included) get a `path: message` diagnostic, not a traceback.
    from repro.rtl.lint import Severity, lint_netlist

    specs = []
    if args.key == "all":
        for key in SPEC_CATALOG:
            family = SPEC_CATALOG[key]
            width = max(args.width, family.min_width)
            try:
                specs.append((f"{key} w={width}", family(width)))
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    elif args.key in SPEC_CATALOG:
        family = SPEC_CATALOG[args.key]
        width = max(args.width, family.min_width)
        try:
            specs.append((f"{args.key} w={width}", family(width)))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.key.endswith(".json") or os.path.sep in args.key \
            or os.path.exists(args.key):
        from repro.spec.ir import AdderSpec

        try:
            with open(args.key, "r", encoding="utf-8") as handle:
                spec = AdderSpec.from_json(handle.read())
        except OSError as exc:
            print(f"{args.key}: error: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"{args.key}: error: {exc}", file=sys.stderr)
            return 2
        specs.append((f"{args.key} ({spec.name})", spec))
    else:
        print(f"error: unknown spec family {args.key!r} (and no such "
              f"file); known: {', '.join(sorted(SPEC_CATALOG))}",
              file=sys.stderr)
        return 2

    failed = False
    for label, spec in specs:
        report = lint_netlist(spec.to_netlist())
        lines = report.format_text().splitlines()
        lines[0] = f"{label}: {lines[0].split(': ', 1)[1]}"
        print("\n".join(lines))
        failed = failed or not report.ok(fail_on=Severity.from_label("error"))
    return 1 if failed else 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.engine import use_engine
    from repro.experiments import EXPERIMENTS

    engine = _engine_from_args(args)
    results = []
    with use_engine(engine):
        for name in ("ablation-distributions", "ablation-correction"):
            spec = EXPERIMENTS[name]
            results.append(
                (spec, spec.run(samples=args.samples, seed=args.seed,
                                engine=engine))
            )
    if args.json:
        _print_json([result.to_json() for _, result in results])
        return 0
    print("\n\n".join(spec.renderer(result) for spec, result in results))
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import read_trace, render_report, report_to_json

    try:
        data = read_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        _print_json(report_to_json(data.frame))
        return 0
    title = "telemetry report"
    if data.labels:
        title += f" — {'; '.join(data.labels)}"
    print(render_report(data.frame, title=title))
    if data.events:
        print(f"\nevents: {len(data.events)} span records in trace")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.engine.cache import ShardCache

    cache = ShardCache(args.dir)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"{args.dir}: removed {removed} cached shard(s)")
        return 0

    # stats: load every entry through the instrumented path, so the obs
    # counters report validity (hit = parseable, miss = corrupt) and the
    # bytes actually read, exactly as an engine run would see them.
    with obs.collecting() as collector:
        for digest in cache.digests():
            cache.load(digest)
    frame = collector.snapshot()
    counters = frame.counters
    entries, total_bytes = cache.disk_usage()
    payload = {
        "dir": str(args.dir),
        "entries": entries,
        "bytes": total_bytes,
        "valid": counters.get("engine.cache.hit", 0),
        "corrupt": counters.get("engine.cache.miss", 0),
        "bytes_read": counters.get("engine.cache.bytes_read", 0),
    }
    code = 0 if payload["corrupt"] == 0 else 1
    if args.json:
        _print_json(payload)
        return code
    print(f"shard cache {payload['dir']}")
    print(f"  entries     : {payload['entries']}")
    print(f"  total bytes : {payload['bytes']}")
    print(f"  valid       : {payload['valid']}")
    print(f"  corrupt     : {payload['corrupt']}")
    return code


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeDaemon

    cache = None if args.no_cache else args.cache
    cache_bytes = (None if args.cache_size is None
                   else int(args.cache_size * (1 << 20)))
    daemon = ServeDaemon(
        host=args.host, port=args.port, workers=args.workers,
        jobs=args.jobs, cache=cache, cache_bytes=cache_bytes,
        drain_timeout=args.drain_timeout,
        # The ready line goes out only after the socket is bound, so
        # wrappers (CI, tests) can wait for it then read the real port.
        ready=lambda d: print(
            f"serving on http://{d.host}:{d.port} (workers={d.workers})",
            flush=True),
    )
    return daemon.run()


def _client_wire(args: argparse.Namespace) -> dict:
    """Parse the request body argument (inline JSON or '-' for stdin)."""
    text = sys.stdin.read() if args.body == "-" else args.body
    try:
        wire = json.loads(text or "{}")
    except ValueError as exc:
        raise CLIError(f"request body is not valid JSON: {exc}")
    if not isinstance(wire, dict):
        raise CLIError("request body must be a JSON object")
    return wire


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient, ServeError, protocol, replay

    command = args.client_command
    if command == "eval" and args.offline:
        # Local oracle: canonical bytes for the same wire body, for
        # byte-identity checks against a served response.
        try:
            payload = protocol.offline_eval_payload(_client_wire(args))
        except (protocol.ProtocolError, ValueError) as exc:
            raise CLIError(str(exc))
        sys.stdout.buffer.write(protocol.canonical_bytes(payload))
        return 0

    if command == "replay":
        try:
            script = json.loads(sys.stdin.read() if args.script == "-"
                                else open(args.script).read())
        except (OSError, ValueError) as exc:
            raise CLIError(f"cannot load script: {exc}")
        if not isinstance(script, list):
            raise CLIError("replay script must be a JSON list of requests")
        try:
            summary = replay(script, host=args.host, port=args.port,
                             concurrency=args.concurrency)
        except (ValueError, ConnectionError, OSError) as exc:
            raise CLIError(str(exc))
        _print_json(summary)
        return 0 if not summary["errors"] else 1

    client = ServeClient(args.host, args.port)
    try:
        if command == "eval":
            sys.stdout.buffer.write(client.eval_raw(_client_wire(args)))
            return 0
        if command == "verify":
            payload = client.verify(_client_wire(args))
            _print_json(payload)
            return 0 if payload.get("ok") else 1
        if command == "experiment":
            _print_json(client.experiment(_client_wire(args)))
            return 0
        if command == "health":
            payload = client.healthz()
            _print_json(payload)
            return 0 if payload.get("status") == "ok" else 1
        _print_json(client.stats())  # stats
        return 0
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        raise CLIError(f"cannot reach daemon at "
                       f"http://{args.host}:{args.port}: {exc}")
    finally:
        client.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gear",
        description="GeAr accuracy-configurable adder (DAC 2015) reproduction",
    )
    parser.add_argument("--version", action="version",
                        version=f"gear {_package_version()}")
    _add_obs_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="describe a GeAr(N,R,P) configuration")
    info.add_argument("n", type=int)
    info.add_argument("r", type=int)
    info.add_argument("p", type=int)
    info.set_defaults(func=_cmd_info)

    sweep = sub.add_parser("sweep", help="sweep the design space of width N")
    sweep.add_argument("n", type=int)
    sweep.add_argument("--r", type=int, default=None)
    sweep.add_argument("--no-hardware", action="store_true",
                       help="skip netlist characterisation (faster)")
    sweep.add_argument("--json", action="store_true",
                       help="deterministic JSON output (identical at any --jobs)")
    _add_sampling_flags(
        sweep,
        samples_help="also measure each configuration by Monte-Carlo "
        "through the engine",
    )
    _add_engine_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    verilog = sub.add_parser("verilog", help="emit structural Verilog")
    verilog.add_argument("n", type=int)
    verilog.add_argument("r", type=int)
    verilog.add_argument("p", type=int)
    verilog.add_argument("--hierarchical", action="store_true",
                         help="modular RTL (sub-adder module + top)")
    verilog.set_defaults(func=_cmd_verilog)

    from repro.experiments import EXPERIMENTS

    def _add_experiment_flags(cmd: argparse.ArgumentParser, spec) -> None:
        cmd.add_argument("--json", action="store_true",
                         help="unified to_json() output "
                         "(identical at any --jobs)")
        if "samples" in spec.accepts:
            _add_sampling_flags(cmd, seed_default=None)
        _add_engine_flags(cmd)

    for name, help_text in [
        ("table1", "Table I — Image Integral accuracy comparison"),
        ("table2", "Table II — GDA vs GeAr, 8-bit"),
        ("table3", "Table III — error probability: model vs simulation"),
        ("table4", "Table IV — execution-time prediction"),
        ("fig1", "Fig. 1 — design-space comparison"),
        ("fig7", "Fig. 7 — accuracy vs prediction bits"),
        ("fig8", "Fig. 8 — Delay×NED, GeAr vs GDA"),
        ("fig9", "Fig. 9 — per-application timing"),
    ]:
        cmd = sub.add_parser(name, help=help_text)
        _add_experiment_flags(cmd, EXPERIMENTS[name])
        cmd.set_defaults(func=_cmd_experiment(name))

    experiment = sub.add_parser(
        "experiment",
        help="run any registered experiment by name",
        description="Artefacts: " + ", ".join(
            f"{name} ({spec.description})" for name, spec in
            sorted(EXPERIMENTS.items())
        ),
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--json", action="store_true",
                            help="unified to_json() output "
                            "(identical at any --jobs)")
    _add_sampling_flags(experiment, seed_default=None)
    _add_engine_flags(experiment)
    experiment.set_defaults(func=_cmd_experiment_named)

    lint = sub.add_parser(
        "lint",
        help="static analysis of a builder netlist or structural .v file",
        description="Lint a named builder adder (e.g. 'lint gear 12 4 4'), "
        "every adder in the builder matrix ('lint all'), or a structural "
        "Verilog file ('lint adder.v').",
    )
    lint.add_argument("target", nargs="?", default=None,
                      help="builder name, 'all', or a .v file path")
    lint.add_argument("params", nargs="*", type=int,
                      help="builder parameters, e.g. 12 4 4")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable JSON output")
    lint.add_argument("--fail-on", choices=["error", "warning", "info", "never"],
                      default="error",
                      help="exit 1 when a diagnostic reaches this severity "
                      "(default: error)")
    lint.add_argument("--suppress", action="append", metavar="RULE",
                      help="skip a rule id (repeatable)")
    lint.add_argument("--opt", action="store_true",
                      help="lint the optimised netlist instead of the raw one")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and exit")
    lint.set_defaults(func=_cmd_lint)

    verify = sub.add_parser(
        "verify",
        help="differential conformance check across all model layers",
        description="Differentially verify every registered adder across "
        "the behavioural, netlist, Verilog, statistical, analytic-PMF, "
        "compiled-kernel and vector layers.  Exits 1 when any layer "
        "disagrees; mismatches are reported with a shrunk counterexample.",
    )
    verify.add_argument("--adder", action="append", metavar="NAME",
                        help="registry key to verify (repeatable; "
                        "default: the full registry)")
    verify.add_argument("--layer", action="append",
                        choices=["behavioural", "verilog", "stats",
                                 "analytic", "compiled", "vector"],
                        help="layer to run (repeatable; default: all six)")
    verify.add_argument("--width", type=int, default=8, metavar="N",
                        help="operand width to verify at (default: 8, "
                        "exhaustive for the behavioural layer)")
    verify.add_argument("--json", action="store_true",
                        help="machine-readable ConformanceReport list")
    verify.add_argument("--list-adders", action="store_true",
                        help="list conformance registry entries and exit")
    _add_sampling_flags(verify, samples_help="Monte-Carlo sample count for "
                        "the stats layer at widths beyond the exhaustive cap")
    _add_engine_flags(verify)
    verify.set_defaults(func=_cmd_verify)

    spec_parser = sub.add_parser(
        "spec",
        help="the declarative AdderSpec catalog (list / show / lint)",
        description="Inspect the AdderSpec IR catalog — the single "
        "declarative source that the behavioural models, the netlist "
        "builders, the analytic error terms and the conformance registry "
        "are all compiled from (see docs/spec.md).",
    )
    spec_sub = spec_parser.add_subparsers(dest="spec_command", required=True)
    spec_list = spec_sub.add_parser(
        "list", help="catalog families, minimum widths and fingerprints")
    spec_list.add_argument("--width", type=int, default=8, metavar="N",
                           help="width for --json fingerprints (families "
                           "with a larger minimum use that instead)")
    spec_list.add_argument("--json", action="store_true",
                           help="machine-readable listing with fingerprints")
    spec_list.set_defaults(func=_cmd_spec)
    spec_show = spec_sub.add_parser(
        "show", help="one family's full spec at a given width")
    spec_show.add_argument("key", help="catalog key (see 'gear spec list')")
    spec_show.add_argument("--width", type=int, default=8, metavar="N")
    spec_show.add_argument("--json", action="store_true",
                           help="the round-trippable spec JSON document")
    spec_show.set_defaults(func=_cmd_spec)
    spec_lint = spec_sub.add_parser(
        "lint", help="compile each spec to a netlist and lint it")
    spec_lint.add_argument("key", nargs="?", default="all",
                           help="catalog key, or a path to a spec JSON "
                           "document (default: the whole catalog)")
    spec_lint.add_argument("--width", type=int, default=8, metavar="N")
    spec_lint.set_defaults(func=_cmd_spec)

    ablation = sub.add_parser("ablation", help="run both ablation studies")
    ablation.add_argument("--json", action="store_true",
                          help="unified to_json() output for both studies")
    _add_sampling_flags(ablation, seed_default=None)
    _add_engine_flags(ablation)
    ablation.set_defaults(func=_cmd_ablation)

    motivation = sub.add_parser(
        "motivation", help="carry-chain statistics behind the paper's premise"
    )
    motivation.set_defaults(func=_cmd_motivation)

    export = sub.add_parser("export",
                            help="write experiment CSVs/JSON for plotting")
    export.add_argument("--dir", default="export", help="output directory")
    export.add_argument("--only", nargs="*", default=None,
                        help="artefact ids (fig1 fig7 ... table4)")
    export.add_argument("--json", action="store_true",
                        help="write unified to_json() documents instead of CSV")
    _add_engine_flags(export)
    export.set_defaults(func=_cmd_export)

    spectrum = sub.add_parser("spectrum",
                              help="error-magnitude spectrum of a config")
    spectrum.add_argument("n", type=int)
    spectrum.add_argument("r", type=int)
    spectrum.add_argument("p", type=int)
    _add_sampling_flags(spectrum, samples_default=100_000)
    _add_engine_flags(spectrum)
    spectrum.set_defaults(func=_cmd_spectrum)

    report = sub.add_parser("report",
                            help="generate the full reproduction report")
    report.add_argument("--out", default="reproduction_report.md")
    report.add_argument("--quick", action="store_true",
                        help="skip synthesis-heavy sections and ablations")
    report.set_defaults(func=_cmd_report)

    from repro.engine import DEFAULT_CACHE_DIR

    cache = sub.add_parser(
        "cache",
        help="shard-cache maintenance (stats / clear)",
        description="Inspect or empty the engine's on-disk shard cache.  "
        "'stats' re-reads every entry through the instrumented cache path "
        "and reports validity and size from the obs counters.",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for action, help_text in [("stats", "entry count, bytes and validity"),
                              ("clear", "remove every cached shard")]:
        action_parser = cache_sub.add_parser(action, help=help_text)
        action_parser.add_argument("--dir", default=DEFAULT_CACHE_DIR,
                                   help=f"cache directory "
                                   f"(default: {DEFAULT_CACHE_DIR})")
        if action == "stats":
            action_parser.add_argument("--json", action="store_true",
                                       help="machine-readable stats")
        action_parser.set_defaults(func=_cmd_cache)

    obs_parser = sub.add_parser(
        "obs",
        help="observability utilities (report)",
        description="Utilities over saved telemetry traces "
        "(see 'gear --trace' and docs/obs.md).",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="re-summarize a saved JSONL trace")
    obs_report.add_argument("trace_file", help="trace written by --trace")
    obs_report.add_argument("--json", action="store_true",
                            help="machine-readable report")
    obs_report.set_defaults(func=_cmd_obs_report)

    from repro.serve.daemon import DEFAULT_HOST, DEFAULT_PORT

    serve = sub.add_parser(
        "serve",
        help="run the always-on evaluation service",
        description="Serve /eval, /verify, /experiment, /healthz and "
        "/stats over HTTP.  Concurrent identical requests coalesce onto "
        "one computation; a persistent warm worker pool keeps compiled "
        "kernels and resolved models memoised.  SIGTERM drains in-flight "
        "requests and exits 0 (see docs/serve.md).",
    )
    serve.add_argument("--host", default=DEFAULT_HOST,
                       help=f"bind address (default: {DEFAULT_HOST})")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port; 0 picks a free one "
                       f"(default: {DEFAULT_PORT})")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="worker processes; 0 evaluates on an "
                       "in-process thread (default: 0)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="max wait for in-flight requests on shutdown "
                       "(default: 30)")
    _add_engine_flags(serve)
    serve.set_defaults(func=_cmd_serve, backend=None)

    client = sub.add_parser(
        "client",
        help="talk to a running evaluation service",
        description="Issue requests against 'gear serve'.  Bodies are "
        "JSON (inline or '-' for stdin); 'eval' prints the daemon's raw "
        "canonical bytes, and 'eval --offline' prints the same bytes "
        "computed locally — cmp the two to check the byte-identity "
        "guarantee.",
    )
    client_sub = client.add_subparsers(dest="client_command", required=True)

    def _client_common(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--host", default=DEFAULT_HOST)
        cmd.add_argument("--port", type=int, default=DEFAULT_PORT)
        cmd.set_defaults(func=_cmd_client)

    client_eval = client_sub.add_parser(
        "eval", help="POST /eval and print the canonical response")
    client_eval.add_argument("body", help="JSON wire body, or '-' for stdin")
    client_eval.add_argument("--offline", action="store_true",
                             help="evaluate locally instead (the oracle "
                             "for byte-identity checks)")
    _client_common(client_eval)
    client_verify = client_sub.add_parser(
        "verify", help="POST /verify (exit 1 when any layer disagrees)")
    client_verify.add_argument("body", nargs="?", default="{}",
                               help="JSON wire body (default: {})")
    _client_common(client_verify)
    client_experiment = client_sub.add_parser(
        "experiment", help="POST /experiment")
    client_experiment.add_argument("body",
                                   help="JSON wire body, e.g. "
                                   '\'{"name": "table3"}\'')
    _client_common(client_experiment)
    client_health = client_sub.add_parser("health", help="GET /healthz")
    _client_common(client_health)
    client_stats = client_sub.add_parser(
        "stats", help="GET /stats (latency, coalescing, telemetry)")
    _client_common(client_stats)
    client_replay = client_sub.add_parser(
        "replay", help="replay a JSON request script concurrently")
    client_replay.add_argument("script",
                               help="path to a JSON list of requests "
                               "('-' for stdin); items are "
                               '{"endpoint": ..., "body": {...}} or bare '
                               "eval bodies")
    client_replay.add_argument("--concurrency", type=int, default=8,
                               metavar="N", help="client threads "
                               "(default: 8)")
    _client_common(client_replay)

    # --trace/--profile are accepted after any subcommand too (the
    # SUPPRESS defaults keep both positions from fighting over the dest).
    for subparser in set(sub.choices.values()):
        _add_obs_flags(subparser)
    return parser


def _validate_backend(args: argparse.Namespace) -> None:
    """Reject an unknown ``--backend`` before any work starts."""
    name = getattr(args, "backend", None)
    if name is None or name == "auto":
        return
    from repro.engine.backends import BACKENDS

    if name not in BACKENDS:
        registered = ", ".join(sorted(BACKENDS) + ["auto"])
        raise CLIError(f"unknown backend {name!r}; registered backends: "
                       f"{registered}")


def _dispatch(args: argparse.Namespace) -> int:
    try:
        _validate_backend(args)
        return args.func(args)
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `gear spectrum ... | head`
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    profile = bool(getattr(args, "profile", False))
    if trace_path is None and not profile:
        return _dispatch(args)

    from repro import obs

    with obs.collecting(events=trace_path is not None) as collector:
        code = _dispatch(args)
    frame = collector.snapshot()
    if trace_path is not None:
        label = " ".join(argv if argv is not None else sys.argv[1:])
        obs.write_trace(trace_path, frame, events=collector.events,
                        label=label)
    # stderr, so stdout stays byte-identical with tracing on or off.
    print(obs.render_report(frame), file=sys.stderr)
    if trace_path is not None:
        print(f"trace written to {trace_path}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
