"""Tiny argument-validation helpers used across the package.

Centralising these keeps error messages consistent (`name must be ...`) and
keeps the adder constructors short.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def check_pos_int(name: str, value: int) -> int:
    """Require ``value`` to be a positive int (bools rejected)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonneg_int(name: str, value: int) -> int:
    """Require ``value`` to be a non-negative int (bools rejected)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_in_range(name: str, value: Number, low: Number, high: Number) -> Number:
    """Require ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_prob(name: str, value: float) -> float:
    """Require ``value`` to be a probability in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")
    return float(value)
