"""Shared low-level utilities: bit vectors, operand distributions, validation."""

from repro.utils.bitvec import (
    bit_length_of,
    bits_of,
    bit_slice,
    carry_chain_lengths,
    carry_into,
    concat_fields,
    from_bits,
    generate_propagate_kill,
    longest_carry_chain,
    mask,
    popcount,
    to_signed,
    to_unsigned,
)
from repro.utils.distributions import (
    OperandDistribution,
    UniformOperands,
    GaussianOperands,
    ExponentialOperands,
    SparseOperands,
    ImagePatchOperands,
)
from repro.utils.validation import (
    check_in_range,
    check_nonneg_int,
    check_pos_int,
    check_prob,
)

__all__ = [
    "bit_length_of",
    "bits_of",
    "bit_slice",
    "carry_chain_lengths",
    "carry_into",
    "concat_fields",
    "from_bits",
    "generate_propagate_kill",
    "longest_carry_chain",
    "mask",
    "popcount",
    "to_signed",
    "to_unsigned",
    "OperandDistribution",
    "UniformOperands",
    "GaussianOperands",
    "ExponentialOperands",
    "SparseOperands",
    "ImagePatchOperands",
    "check_in_range",
    "check_nonneg_int",
    "check_pos_int",
    "check_prob",
]
