"""Operand distributions for Monte-Carlo error evaluation.

The paper's error model assumes every operand bit is an i.i.d. fair coin,
which is exactly what uniform operands give.  Real workloads (image pixels,
filter taps) are *not* uniform, so the library also ships skewed
distributions to study how far the analytic model drifts on realistic data.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from repro.utils.bitvec import mask
from repro.utils.validation import check_pos_int


class OperandDistribution(abc.ABC):
    """A source of operand pairs ``(a, b)`` for an ``N``-bit addition."""

    def __init__(self, width: int) -> None:
        check_pos_int("width", width)
        self.width = width

    @abc.abstractmethod
    def sample(self, count: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` operand pairs as int64 arrays in ``[0, 2**width)``."""

    def sample_pairs(
        self, count: int, seed: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Convenience wrapper creating a seeded generator internally."""
        rng = np.random.default_rng(seed)
        a, b = self.sample(count, rng)
        limit = mask(self.width)
        if a.max(initial=0) > limit or b.max(initial=0) > limit:
            raise AssertionError("distribution produced out-of-range operands")
        return a, b

    def bit_probabilities(self) -> Optional[Tuple[float, ...]]:
        """Per-bit one-probabilities, when the distribution has that form.

        Returns ``width`` floats — ``p[i]`` is the probability that bit
        ``i`` of a drawn operand is one, with all bits independent and
        both operands i.i.d. — or ``None`` when the distribution cannot
        be factored per bit (Gaussian, exponential, image patches, ...).
        The analytic engine backend serves Monte-Carlo requests exactly
        for distributions that return a profile here.
        """
        return None

    def fingerprint(self) -> str:
        """Stable identity string for the engine's shard cache keys.

        Covers the class, the width and every scalar constructor parameter
        stored on the instance; distributions carrying array state (e.g.
        :class:`ImagePatchOperands`) extend it with a content hash.
        """
        scalars = {
            k: v for k, v in sorted(vars(self).items())
            if isinstance(v, (int, float, str, bool))
        }
        params = ",".join(f"{k}={v!r}" for k, v in scalars.items())
        return f"{type(self).__module__}.{type(self).__qualname__}({params})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(width={self.width})"


class UniformOperands(OperandDistribution):
    """Independent uniform operands — the paper's evaluation setting (§4.4)."""

    def sample(self, count: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        high = 1 << self.width
        a = rng.integers(0, high, size=count, dtype=np.int64)
        b = rng.integers(0, high, size=count, dtype=np.int64)
        return a, b

    def bit_probabilities(self) -> Tuple[float, ...]:
        return (0.5,) * self.width


class GaussianOperands(OperandDistribution):
    """Clipped Gaussian operands centred mid-range.

    Models signal-like data (e.g. filtered sensor values) whose MSBs are far
    less active than uniform data assumes.
    """

    def __init__(self, width: int, mean_fraction: float = 0.5, std_fraction: float = 0.15) -> None:
        super().__init__(width)
        if not 0.0 <= mean_fraction <= 1.0:
            raise ValueError(f"mean_fraction must be in [0, 1], got {mean_fraction}")
        if std_fraction <= 0.0:
            raise ValueError(f"std_fraction must be positive, got {std_fraction}")
        self.mean_fraction = mean_fraction
        self.std_fraction = std_fraction

    def sample(self, count: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        top = float(mask(self.width))
        mean = self.mean_fraction * top
        std = self.std_fraction * top

        def draw() -> np.ndarray:
            raw = rng.normal(mean, std, size=count)
            return np.clip(np.rint(raw), 0, top).astype(np.int64)

        return draw(), draw()


class ExponentialOperands(OperandDistribution):
    """Exponentially distributed operands — small values dominate.

    Typical of residuals and difference signals (e.g. SAD inputs after
    motion compensation).
    """

    def __init__(self, width: int, scale_fraction: float = 0.1) -> None:
        super().__init__(width)
        if scale_fraction <= 0.0:
            raise ValueError(f"scale_fraction must be positive, got {scale_fraction}")
        self.scale_fraction = scale_fraction

    def sample(self, count: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        top = float(mask(self.width))
        scale = self.scale_fraction * top

        def draw() -> np.ndarray:
            raw = rng.exponential(scale, size=count)
            return np.clip(np.rint(raw), 0, top).astype(np.int64)

        return draw(), draw()


class SparseOperands(OperandDistribution):
    """Operands with each bit independently 1 with probability ``one_density``.

    ``one_density=0.5`` is equivalent to :class:`UniformOperands`; lower
    densities model sparse data where carries are rare, higher densities
    model near-saturated data where long carry chains abound.
    """

    def __init__(self, width: int, one_density: float = 0.5) -> None:
        super().__init__(width)
        if not 0.0 <= one_density <= 1.0:
            raise ValueError(f"one_density must be in [0, 1], got {one_density}")
        self.one_density = one_density

    def sample(self, count: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        def draw() -> np.ndarray:
            bits = rng.random(size=(count, self.width)) < self.one_density
            weights = (1 << np.arange(self.width, dtype=np.int64))[None, :]
            return (bits * weights).sum(axis=1).astype(np.int64)

        return draw(), draw()

    def bit_probabilities(self) -> Tuple[float, ...]:
        return (self.one_density,) * self.width


class ImagePatchOperands(OperandDistribution):
    """Operand pairs drawn from adjacent pixels of a synthetic image.

    Reproduces the statistics the paper's Image Integral / SAD / LPF kernels
    feed their adders: spatially correlated 8-bit-ish values extended to the
    adder width.  The image is provided by :mod:`repro.apps.images`; this
    class only needs a 2-D uint array.
    """

    def __init__(self, width: int, image: np.ndarray) -> None:
        super().__init__(width)
        image = np.asarray(image)
        if image.ndim != 2 or image.size < 2:
            raise ValueError("image must be a 2-D array with at least two pixels")
        if image.min() < 0 or image.max() > mask(width):
            raise ValueError(f"image values must fit in {width} bits")
        self.image = image.astype(np.int64)

    def fingerprint(self) -> str:
        import hashlib

        digest = hashlib.sha256(
            np.ascontiguousarray(self.image).tobytes()
        ).hexdigest()[:16]
        return f"{super().fingerprint()}:image={digest}"

    def sample(self, count: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        rows, cols = self.image.shape
        r = rng.integers(0, rows, size=count)
        c = rng.integers(0, cols - 1, size=count)
        a = self.image[r, c]
        b = self.image[r, c + 1]
        return a, b
