"""Bit-vector helpers shared by behavioural adder models and the RTL substrate.

All functions operate either on plain Python ints (arbitrary precision) or on
NumPy integer arrays; the array paths are fully vectorised so Monte-Carlo
error simulation over millions of operand pairs stays fast.

Bit indexing convention: bit 0 is the least significant bit, matching the
paper's ``A[L-1:0]`` Verilog-style slices.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

IntLike = Union[int, np.ndarray]


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits (``width`` may be 0)."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_length_of(value: int) -> int:
    """Number of bits needed to represent ``value`` (at least 1)."""
    if value < 0:
        raise ValueError("bit_length_of is defined for non-negative ints")
    return max(1, int(value).bit_length())


def bits_of(value: IntLike, width: int) -> Union[List[int], np.ndarray]:
    """Explode ``value`` into ``width`` bits, LSB first.

    For a scalar int, returns a list of 0/1 ints.  For a NumPy array of shape
    ``(...,)`` returns an array of shape ``(..., width)``.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if isinstance(value, np.ndarray):
        shifts = np.arange(width, dtype=value.dtype)
        return (value[..., None] >> shifts) & 1
    return [(int(value) >> i) & 1 for i in range(width)]


def from_bits(bits: Sequence[int]) -> int:
    """Inverse of :func:`bits_of` for scalar bit lists (LSB first)."""
    result = 0
    for i, b in enumerate(bits):
        if b not in (0, 1):
            raise ValueError(f"bit {i} is {b!r}, expected 0 or 1")
        result |= b << i
    return result


def bit_slice(value: IntLike, high: int, low: int) -> IntLike:
    """Verilog-style slice ``value[high:low]`` (both bounds inclusive)."""
    if low < 0 or high < low:
        raise ValueError(f"invalid slice [{high}:{low}]")
    width = high - low + 1
    return (value >> low) & mask(width)


def concat_fields(fields: Iterable[Tuple[IntLike, int]]) -> IntLike:
    """Concatenate ``(value, width)`` fields, first field at the LSB end.

    Each value is masked to its width before packing, so callers may pass
    values with stray high bits.
    """
    result: IntLike = 0
    offset = 0
    for value, width in fields:
        if width < 0:
            raise ValueError(f"field width must be non-negative, got {width}")
        result = result | ((value & mask(width)) << offset)
        offset += width
    return result


def popcount(value: IntLike) -> IntLike:
    """Population count for scalar ints or NumPy arrays."""
    if isinstance(value, np.ndarray):
        # Kernighan loop is O(bits); vectorised via repeated clears.
        v = value.astype(np.uint64, copy=True)
        count = np.zeros_like(v)
        while np.any(v):
            nonzero = v != 0
            count[nonzero] += 1
            v[nonzero] &= v[nonzero] - 1
        return count.astype(np.int64)
    return int(value).bit_count() if hasattr(int, "bit_count") else bin(int(value)).count("1")


def to_unsigned(value: int, width: int) -> int:
    """Two's-complement encode a signed ``value`` into ``width`` bits."""
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError(f"{value} does not fit in {width} signed bits")
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Interpret the ``width``-bit pattern ``value`` as two's complement."""
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def generate_propagate_kill(a: IntLike, b: IntLike) -> Tuple[IntLike, IntLike, IntLike]:
    """Return bitwise (generate, propagate, kill) signals for operands.

    generate = a & b, propagate = a ^ b, kill = ~a & ~b (per used bit).
    Works on scalars and arrays alike; kill is returned unmasked for scalars,
    so callers should mask to the operand width when they need it.
    """
    g = a & b
    p = a ^ b
    k = ~(a | b)
    return g, p, k


def carry_into(a: IntLike, b: IntLike, position: int, carry_in: IntLike = 0) -> IntLike:
    """Exact carry entering bit ``position`` of the addition ``a + b + carry_in``.

    ``position`` 0 returns ``carry_in`` itself.  Vectorised over arrays.
    """
    if position < 0:
        raise ValueError(f"position must be non-negative, got {position}")
    if position == 0:
        return carry_in if isinstance(carry_in, np.ndarray) else int(carry_in)
    m = mask(position)
    total = (a & m) + (b & m) + carry_in
    return (total >> position) & 1


def carry_chain_lengths(a: int, b: int, width: int, carry_in: int = 0) -> List[int]:
    """Lengths of every maximal carry-propagation chain in ``a + b``.

    A chain starts at a bit that *generates* a carry (or at bit 0 when
    ``carry_in`` is set) and extends through consecutive *propagate* bits.
    Returns possibly-empty list of chain lengths (generate bit included).
    """
    g, p, _ = generate_propagate_kill(a, b)
    chains: List[int] = []
    # An incoming carry behaves like a generate just below bit 0.
    current = 1 if carry_in else 0
    for i in range(width):
        gi = (g >> i) & 1
        pi = (p >> i) & 1
        if gi:
            if current:
                chains.append(current)
            current = 1
        elif pi and current:
            current += 1
        else:
            if current:
                chains.append(current)
            current = 0
    if current:
        chains.append(current)
    return chains


def longest_carry_chain(a: IntLike, b: IntLike, width: int) -> IntLike:
    """Longest carry-propagation chain length in ``a + b`` over ``width`` bits.

    This is the classic quantity motivating approximate adders: the exact
    N-bit sum is produced by an adder whose carry window covers the longest
    generate-then-propagate run.  Vectorised over NumPy arrays.

    The chain counts the generating bit plus every consecutive propagating
    bit above it.
    """
    g = a & b
    p = a ^ b
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        g = np.asarray(g)
        p = np.asarray(p)
        best = np.zeros(np.broadcast(g, p).shape, dtype=np.int64)
        run = np.zeros_like(best)
        for i in range(width):
            gi = (g >> i) & 1
            pi = (p >> i) & 1
            run = np.where(gi == 1, 1, np.where((pi == 1) & (run > 0), run + 1, 0))
            best = np.maximum(best, run)
        return best
    best = 0
    run = 0
    for i in range(width):
        gi = (g >> i) & 1
        pi = (p >> i) & 1
        if gi:
            run = 1
        elif pi and run > 0:
            run += 1
        else:
            run = 0
        best = max(best, run)
    return best
