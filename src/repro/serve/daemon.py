"""The always-on evaluation daemon (``gear serve``).

A stdlib-only asyncio HTTP/1.1 server exposing the evaluation engine,
the conformance harness and the experiment registry as five endpoints:

* ``POST /eval`` — one :class:`~repro.engine.api.EvalRequest` by wire
  reference; the response body is byte-identical to the offline
  engine's canonical JSON for the same request at any worker count.
* ``POST /verify`` — the service-side conformance runner
  (:func:`repro.verify.runner.verify_payload`).
* ``POST /experiment`` — any registered experiment by name.
* ``GET /healthz`` — liveness, protocol version, drain state.
* ``GET /stats`` — per-endpoint request counters, coalescing totals,
  p50/p99 latency from mergeable histograms, and the full telemetry
  report aggregated across worker frames.

Request flow: the event loop parses HTTP and validates the wire body
(bad requests never reach a worker), computes the request's result
identity, and hands the computation to the
:class:`~repro.serve.coalesce.Coalescer` — concurrent duplicates share
one worker-pool task.  Workers return ``(payload, telemetry frame)``;
the daemon absorbs each frame into its aggregate collector, which is
the single source for ``/stats`` and, on shutdown, for the global obs
layer (so ``gear serve --trace serve.jsonl`` writes a standard trace
that ``gear obs report`` renders).

Shutdown: SIGTERM/SIGINT (or :meth:`ServeDaemon.stop`) stops accepting
connections, drains in-flight requests up to ``drain_timeout``, closes
the pool, flushes telemetry, and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import threading
from typing import Callable, Dict, Optional, Tuple

from repro import obs
from repro.obs.aggregate import DURATION_BOUNDS, TelemetryFrame
from repro.obs.export import report_to_json
from repro.serve import protocol
from repro.serve.coalesce import Coalescer
from repro.serve.pool import WorkerPool

__all__ = ["DEFAULT_HOST", "DEFAULT_PORT", "ServeDaemon", "start_background"]

DEFAULT_HOST = "127.0.0.1"

#: Default TCP port — the paper's year, in the dynamic range's shadow.
DEFAULT_PORT = 8015

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}

#: Endpoints that accept a POSTed wire body, mapped to pool handlers.
_POST_ENDPOINTS = ("/eval", "/verify", "/experiment")

_MAX_HEADER_LINES = 100
_MAX_LINE_BYTES = 16 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024


class ServeDaemon:
    """One always-on evaluation service instance."""

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 workers: int = 0, jobs: int = 1,
                 cache: Optional[str] = None,
                 cache_bytes: Optional[int] = None,
                 drain_timeout: float = 30.0,
                 ready: Optional[Callable[["ServeDaemon"], None]] = None
                 ) -> None:
        self.host = host
        self.port = int(port)  # updated to the bound port after start
        self.workers = int(workers)
        self._pool_config = {"jobs": jobs, "cache": cache,
                             "cache_bytes": cache_bytes}
        self.drain_timeout = float(drain_timeout)
        self._ready = ready
        self.collector = obs.Collector()
        self.coalescer = Coalescer()
        self.pool: Optional[WorkerPool] = None
        self.draining = False
        self._inflight = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._connections: set = set()
        #: Set once the server socket is bound (for background starts).
        self.started = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and spin up the worker pool."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self.pool = WorkerPool(workers=self.workers, **self._pool_config)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started.set()
        if self._ready is not None:
            self._ready(self)

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (callable from the event loop)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    def stop(self) -> None:
        """Thread-safe shutdown request (for background daemons)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_shutdown)

    def _install_signal_handlers(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(sig, lambda *_: self.stop())

    async def run_async(self, install_signals: bool = True) -> int:
        """Serve until a shutdown request, then drain and exit cleanly."""
        await self.start()
        if install_signals:
            self._install_signal_handlers()
        await self._shutdown_event.wait()
        # Stop accepting new connections, then let in-flight requests
        # finish; keep-alive loops see `draining` and close after the
        # response they are currently producing.
        self.draining = True
        self._server.close()
        await self._server.wait_closed()
        await self._drain()
        # Close idle keep-alive connections so their handler tasks see
        # EOF and finish on their own — loop teardown must not have to
        # cancel them (that leaks noisy CancelledError callbacks).
        for writer in list(self._connections):
            writer.close()
        tasks = [t for t in asyncio.all_tasks()
                 if t is not asyncio.current_task()]
        if tasks:
            await asyncio.wait(tasks, timeout=5.0)
        self.pool.shutdown(wait=True)
        self._flush_telemetry()
        return 0

    def run(self) -> int:
        """Blocking entry point used by ``gear serve``."""
        return asyncio.run(self.run_async())

    async def _drain(self) -> None:
        deadline = self._loop.time() + self.drain_timeout
        while self._inflight > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.02)

    def _flush_telemetry(self) -> None:
        """Fold the daemon aggregate into the global obs layer.

        A no-op when observability is off; under ``gear serve --trace``
        the CLI's active collector receives the frame and writes the
        standard JSONL trace on exit.
        """
        obs.absorb(self.collector.snapshot())

    # -- HTTP ----------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, keep_alive, body = request
                self._inflight += 1
                t0 = self._loop.time()
                try:
                    status, payload = await self._dispatch(method, path, body)
                finally:
                    self._inflight -= 1
                known = path in _POST_ENDPOINTS or path in ("/healthz",
                                                            "/stats")
                endpoint = path.lstrip("/") if known else "other"
                self.collector.count(f"serve.{endpoint}.requests")
                self.collector.observe(f"serve.{endpoint}.duration_s",
                                       self._loop.time() - t0,
                                       bounds=DURATION_BOUNDS)
                if status != 200:
                    self.collector.count("serve.errors")
                keep_alive = keep_alive and not self.draining
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError,
                BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, bool, bytes]]:
        """Parse one HTTP/1.1 request; None on EOF/malformed stream."""
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):  # pragma: no cover
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > _MAX_LINE_BYTES:
                return None
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            return None
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return None
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        # Strip any query string; the protocol is body-only.
        path = target.split("?", 1)[0]
        return method.upper(), path, keep_alive, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict, keep_alive: bool) -> None:
        body = protocol.canonical_bytes(payload)
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> Tuple[int, Dict]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, self._health_payload()
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "stats is GET-only"}
            return 200, self._stats_payload()
        if path not in _POST_ENDPOINTS:
            return 404, {"error": f"unknown path {path!r}; endpoints: "
                         f"{list(_POST_ENDPOINTS) + ['/healthz', '/stats']}"}
        if method != "POST":
            return 405, {"error": f"{path} needs POST"}
        try:
            wire = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, ValueError) as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}
        endpoint = path.lstrip("/")
        try:
            key = self._coalesce_key(endpoint, wire)
        except protocol.ProtocolError as exc:
            return 400, {"error": str(exc)}
        except ValueError as exc:  # e.g. explicitly unsupported backend
            return 400, {"error": str(exc)}

        try:
            payload, coalesced = await self.coalescer.run(
                key, lambda: self._execute(endpoint, wire))
        except protocol.ProtocolError as exc:
            self.collector.count(f"serve.{endpoint}.protocol_errors")
            return 400, {"error": str(exc)}
        except ValueError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # worker crash — never take the daemon down
            self.collector.count(f"serve.{endpoint}.failures")
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        self.collector.count(
            f"serve.coalesce.{'hit' if coalesced else 'miss'}")
        return 200, payload

    def _coalesce_key(self, endpoint: str, wire: Dict) -> Optional[str]:
        """Validate the wire body and derive its in-flight identity."""
        if endpoint == "eval":
            return protocol.eval_coalesce_key(protocol.build_request(wire))
        if endpoint == "verify":
            protocol.build_verify_options(wire)  # validation only
        else:
            protocol.build_experiment(wire)
        return protocol.wire_coalesce_key(endpoint, wire)

    async def _execute(self, endpoint: str, wire: Dict) -> Dict:
        """Ship one request to the pool and fold its telemetry home."""
        self.collector.count(f"serve.{endpoint}.computed")
        future = self.pool.submit(endpoint, wire)
        payload, frame = await asyncio.wrap_future(future)
        if frame:
            self.collector.absorb(TelemetryFrame.from_dict(frame))
        return payload

    # -- introspection payloads ----------------------------------------------

    def _health_payload(self) -> Dict:
        return {
            "status": "draining" if self.draining else "ok",
            "protocol": protocol.PROTOCOL_VERSION,
            "workers": self.workers,
            "endpoints": list(_POST_ENDPOINTS) + ["/healthz", "/stats"],
        }

    def _stats_payload(self) -> Dict:
        frame = self.collector.snapshot()
        latency = {}
        for name, hist in sorted(frame.histograms.items()):
            if not name.endswith(".duration_s"):
                continue
            endpoint = name[: -len(".duration_s")]
            p50, p99 = hist.quantile(0.5), hist.quantile(0.99)
            latency[endpoint] = {
                "count": hist.count,
                "mean_s": hist.mean,
                "p50_s": p50 if math.isfinite(p50) else None,
                "p99_s": p99 if math.isfinite(p99) else None,
            }
        return {
            "server": {
                "workers": self.workers,
                "draining": self.draining,
                "inflight_requests": self._inflight,
                "coalesce": {
                    "hits": self.coalescer.hits,
                    "misses": self.coalescer.misses,
                    "inflight_keys": self.coalescer.inflight,
                },
            },
            "latency": latency,
            "telemetry": report_to_json(frame),
        }


def start_background(daemon: ServeDaemon,
                     timeout: float = 15.0) -> threading.Thread:
    """Run a daemon on a background thread (tests and the load bench).

    The caller owns shutdown: ``daemon.stop()`` then ``thread.join()``.
    """
    thread = threading.Thread(
        target=lambda: asyncio.run(daemon.run_async(install_signals=False)),
        name="gear-serve", daemon=True)
    thread.start()
    if not daemon.started.wait(timeout):  # pragma: no cover - defensive
        raise RuntimeError("serve daemon failed to start within "
                           f"{timeout:.0f}s")
    return thread
