"""Always-on evaluation service (``gear serve`` / ``gear client``).

``repro.serve`` turns the offline engine into a long-running daemon so
repeated evaluation traffic amortises the expensive parts — compiled
bit-sliced kernels, resolved adder models, analytic plans — across
requests instead of per process:

* :mod:`repro.serve.protocol` — JSON wire protocol, adder references,
  canonical response encoding (byte-identical to ``gear ... --json``),
* :mod:`repro.serve.coalesce` — in-flight request coalescing keyed by
  result identity,
* :mod:`repro.serve.pool` — persistent warm worker pool with telemetry
  frames shipped back across process boundaries,
* :mod:`repro.serve.daemon` — the asyncio HTTP daemon: ``/eval``,
  ``/verify``, ``/experiment``, ``/healthz``, ``/stats``; graceful
  SIGTERM drain,
* :mod:`repro.serve.client` — stdlib client plus the concurrent
  ``replay`` driver.

See ``docs/serve.md`` for the protocol and deployment notes.
"""

from repro.serve.coalesce import Coalescer
from repro.serve.daemon import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServeDaemon,
    start_background,
)
from repro.serve.pool import WorkerPool
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    build_request,
    canonical_bytes,
    eval_coalesce_key,
    offline_eval_payload,
    resolve_adder,
)
from repro.serve.client import ServeClient, ServeError, replay

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Coalescer",
    "ProtocolError",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "WorkerPool",
    "build_request",
    "canonical_bytes",
    "eval_coalesce_key",
    "offline_eval_payload",
    "replay",
    "resolve_adder",
    "start_background",
]
