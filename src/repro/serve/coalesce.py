"""In-flight request coalescing.

When several concurrent requests carry the same result identity (see
:func:`repro.serve.protocol.eval_coalesce_key`), only the first reaches
the worker pool; the rest await the same future and share its payload.
This is the concurrent complement of the on-disk shard cache: the cache
deduplicates work across *time* (a request repeated after completion is
served from disk), the coalescer deduplicates across *space* (a request
repeated while the first is still computing never reaches a worker).

The coalescer is single-loop state — every method must be called from
the daemon's event loop.  Failures propagate to every waiter: if the
leader's computation raises, all coalesced followers see the same
exception, and the key is released so a retry computes afresh.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

__all__ = ["Coalescer"]


class Coalescer:
    """Map of in-flight result identities to their pending futures."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}
        self.hits = 0
        self.misses = 0

    @property
    def inflight(self) -> int:
        """Number of distinct computations currently in flight."""
        return len(self._inflight)

    async def run(self, key: Optional[str],
                  compute: Callable[[], Awaitable[Any]]) -> Tuple[Any, bool]:
        """Run ``compute`` once per concurrent ``key``.

        Returns ``(payload, coalesced)`` where ``coalesced`` is True when
        this call piggybacked on another request's in-flight computation.
        A None key (a request with no stable identity) always computes.
        """
        if key is None:
            self.misses += 1
            return await compute(), False

        pending = self._inflight.get(key)
        if pending is not None:
            self.hits += 1
            # shield: cancelling one coalesced waiter must not tear down
            # the computation other waiters (and the leader) share.
            return await asyncio.shield(pending), True

        self.misses += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            payload = await compute()
        except BaseException as exc:
            future.set_exception(exc)
            # Mark retrieved so a follower-less failure does not log an
            # "exception was never retrieved" warning at GC time.
            future.exception()
            raise
        else:
            future.set_result(payload)
            return payload, False
        finally:
            self._inflight.pop(key, None)
