"""Persistent warm worker pool behind the serve daemon.

Each worker is a long-lived process (or, with ``workers=0``, a single
in-process thread) holding a per-process :class:`~repro.engine.Engine`
plus everything the engine memoises process-wide: compiled bit-sliced
kernels (:mod:`repro.rtl.compile`'s fingerprint-keyed cache), resolved
adder models (:mod:`repro.serve.protocol`'s reference cache) and — when
a cache directory is configured — the content-addressed shard cache as
the tier shared by every worker and the offline CLI alike.  A repeat
request therefore costs deserialisation plus a cache probe, not a model
rebuild or kernel recompile: that is the "warm" in warm pool.

Every task returns ``(payload, frame_dict)``: the JSON-safe response
body plus the worker's :class:`~repro.obs.TelemetryFrame` snapshot.
The daemon folds each frame into its aggregate exactly as the engine's
own pool workers do (``docs/obs.md``), so ``/stats`` reports engine
counters (shards executed, cache hits, backend dispatch) accumulated
across process boundaries — and because frames form a commutative
monoid, the aggregate is independent of request interleaving.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro import obs
from repro.serve import protocol

__all__ = ["WorkerPool", "run_endpoint"]

#: Engine configuration of the current worker process.
_CONFIG: Dict = {}

#: The worker's persistent engine (None until first use).
_ENGINE = None


def _configure(config: Dict) -> None:
    """Process-pool initializer: record the engine configuration."""
    global _CONFIG, _ENGINE
    _CONFIG = dict(config)
    _ENGINE = None


def _engine():
    """The worker's lazily-built persistent engine."""
    global _ENGINE
    if _ENGINE is None:
        from repro.engine import Engine, ShardCache

        cache = _CONFIG.get("cache")
        if cache is not None and _CONFIG.get("cache_bytes") is not None:
            cache = ShardCache(cache, max_bytes=int(_CONFIG["cache_bytes"]))
        _ENGINE = Engine(jobs=int(_CONFIG.get("jobs", 1)), cache=cache)
    return _ENGINE


def _run_eval(wire: Dict) -> Dict:
    request = protocol.build_request(wire)
    return _engine().evaluate(request).to_json()


def _run_verify(wire: Dict) -> Dict:
    from repro.verify.runner import verify_payload

    adders, options = protocol.build_verify_options(wire)
    return verify_payload(adders, options=options, engine=_engine())


def _run_experiment(wire: Dict) -> Dict:
    from repro.engine import use_engine
    from repro.experiments import EXPERIMENTS

    name, kwargs = protocol.build_experiment(wire)
    engine = _engine()
    with use_engine(engine):
        result = EXPERIMENTS[name].run(engine=engine, **kwargs)
    return result.to_json()


_HANDLERS = {
    "eval": _run_eval,
    "verify": _run_verify,
    "experiment": _run_experiment,
}


def run_endpoint(endpoint: str, wire: Dict) -> Tuple[Dict, Optional[dict]]:
    """Execute one service request in this worker.

    Returns ``(payload, frame)`` where ``frame`` is the worker-side
    telemetry of exactly this request as a JSON-safe dict (the worker
    records into a private collector, so frames never bleed between
    concurrently-executing requests in different workers).
    """
    handler = _HANDLERS[endpoint]
    collector = obs.Collector()
    previous = obs.set_collector(collector)
    try:
        with obs.span(f"serve.worker.{endpoint}"):
            payload = handler(wire)
    finally:
        obs.set_collector(previous)
    return payload, collector.snapshot().to_dict()


class WorkerPool:
    """Fixed pool of persistent evaluation workers.

    Args:
        workers: worker processes.  ``0`` runs everything on one
            in-process thread — no pickling, same warm-state semantics,
            the right choice for tests and single-tenant use.
        jobs: per-request engine parallelism inside each worker.
        cache: shard-cache directory shared by all workers (None
            disables the shared tier).
        cache_bytes: optional size cap for the shared cache.
    """

    def __init__(self, workers: int = 0, jobs: int = 1,
                 cache: Optional[str] = None,
                 cache_bytes: Optional[int] = None) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = int(workers)
        config = {
            "jobs": int(jobs),
            "cache": None if cache is None else str(cache),
            "cache_bytes": cache_bytes,
        }
        if self.workers >= 1:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_configure, initargs=(config,))
        else:
            # Single in-process worker thread; max_workers=1 serialises
            # execution, which makes the collector swap in run_endpoint
            # safe without thread-local obs state.
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serve-worker",
                initializer=_configure, initargs=(config,))

    def submit(self, endpoint: str, wire: Dict) -> Future:
        """Schedule one request; the future resolves to (payload, frame)."""
        return self._executor.submit(run_endpoint, endpoint, wire)

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "process" if self.workers >= 1 else "thread"
        return f"WorkerPool(workers={self.workers}, kind={kind!r})"
