"""Wire protocol of the evaluation service.

Every body on the wire is JSON; the daemon's canonical encoding
(:func:`canonical_bytes` — two-space indent, sorted keys, trailing
newline) matches the CLI's ``--json`` output byte for byte, so a served
``/eval`` response can be ``cmp``-ed directly against the offline
engine's JSON for the same request at any worker count.

An ``/eval`` request names its adder by *reference* instead of shipping
a model object:

* ``{"adder": "gear_r2p2"}`` — a conformance-registry key at the
  default width,
* ``{"adder": {"family": "etaii", "width": 16}}`` — a registry key at
  an explicit width,
* ``{"adder": {"gear": [12, 4, 4]}}`` — an arbitrary GeAr(N, R, P)
  configuration,
* ``{"adder": {"spec": {...}}}`` — a full round-trippable
  :class:`~repro.spec.ir.AdderSpec` document (version 1 or 2; v2
  documents may declare static windows and a rectify stage, and a
  rectified spec's request digest never coalesces with its unrectified
  twin because the two fingerprints differ).

The remaining fields mirror :class:`~repro.engine.api.EvalRequest`:
``mode`` (``monte_carlo``/``exhaustive`` — ``fixed`` replays local
arrays and has no wire form), ``samples``, ``seed``, ``backend`` and
``thresholds``.  Resolution is memoised per process, so a warm worker
answers repeat references without rebuilding models or recompiling
kernels.

Malformed or unsupported requests raise :class:`ProtocolError`, which
the daemon maps to HTTP 400 with an ``{"error": ...}`` body.
"""

from __future__ import annotations

import functools
import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import api

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_WIDTH",
    "ProtocolError",
    "build_experiment",
    "build_request",
    "build_verify_options",
    "canonical_bytes",
    "eval_coalesce_key",
    "offline_eval_payload",
    "resolve_adder",
    "wire_coalesce_key",
]

#: Version stamped into ``/healthz`` so clients can detect drift.
PROTOCOL_VERSION = 1

#: Adder width used when a reference does not name one.
DEFAULT_WIDTH = 8

#: Evaluation modes that have a wire form.
WIRE_MODES = ("monte_carlo", "exhaustive")

_EVAL_KEYS = {"adder", "mode", "samples", "seed", "backend", "thresholds"}
_VERIFY_KEYS = {"adders", "width", "layers", "samples", "seed", "backend"}
_EXPERIMENT_KEYS = {"name", "samples", "seed", "backend"}


class ProtocolError(ValueError):
    """A malformed or unsupported wire request (answered with HTTP 400)."""


def canonical_bytes(payload: Any) -> bytes:
    """The service's canonical JSON encoding of a response payload."""
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()


# -- adder references --------------------------------------------------------

@functools.lru_cache(maxsize=512)
def _family_adder(key: str, width: int):
    from repro.verify.registry import registry_adder

    return registry_adder(key, width)


@functools.lru_cache(maxsize=512)
def _gear_adder(n: int, r: int, p: int):
    from repro.core.gear import GeArAdder, GeArConfig

    strict = r > 0 and (n - r - p) % r == 0
    return GeArAdder(GeArConfig(n, r, p, allow_partial=not strict))


@functools.lru_cache(maxsize=512)
def _spec_adder(document: str):
    from repro.spec.ir import AdderSpec

    return AdderSpec.from_dict(json.loads(document)).to_model()


def resolve_adder(ref: Any):
    """Build (memoised) the adder model named by a wire reference."""
    try:
        if isinstance(ref, str):
            return _family_adder(ref, DEFAULT_WIDTH)
        if isinstance(ref, dict):
            if "family" in ref:
                return _family_adder(str(ref["family"]),
                                     int(ref.get("width", DEFAULT_WIDTH)))
            if "gear" in ref:
                n, r, p = (int(v) for v in ref["gear"])
                return _gear_adder(n, r, p)
            if "spec" in ref:
                return _spec_adder(json.dumps(ref["spec"], sort_keys=True))
    except ProtocolError:
        raise
    except (TypeError, KeyError, ValueError) as exc:
        raise ProtocolError(f"bad adder reference {ref!r}: {exc}") from exc
    raise ProtocolError(
        f"bad adder reference {ref!r}: expected a registry key, "
        "{'family': ..., 'width': ...}, {'gear': [n, r, p]} or "
        "{'spec': {...}}")


def _check_keys(wire: Dict, allowed: set, what: str) -> None:
    if not isinstance(wire, dict):
        raise ProtocolError(f"{what} body must be a JSON object, "
                            f"got {type(wire).__name__}")
    unknown = sorted(set(wire) - allowed)
    if unknown:
        raise ProtocolError(f"unknown {what} fields {unknown}; "
                            f"expected a subset of {sorted(allowed)}")


# -- /eval -------------------------------------------------------------------

def build_request(wire: Dict) -> "api.EvalRequest":
    """Turn an ``/eval`` wire body into an :class:`EvalRequest`."""
    _check_keys(wire, _EVAL_KEYS, "eval")
    if "adder" not in wire:
        raise ProtocolError("eval body needs an 'adder' reference")
    adder = resolve_adder(wire["adder"])
    mode = str(wire.get("mode", "monte_carlo"))
    if mode not in WIRE_MODES:
        raise ProtocolError(f"unknown mode {mode!r}; the wire protocol "
                            f"supports {WIRE_MODES}")
    seed = wire.get("seed", 2015)
    kwargs: Dict[str, Any] = {
        "adder": adder,
        "mode": mode,
        "backend": str(wire.get("backend", "sampling")),
    }
    if "thresholds" in wire:
        try:
            kwargs["maa_thresholds"] = tuple(
                float(t) for t in wire["thresholds"])
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad thresholds: {exc}") from exc
    if mode == "monte_carlo":
        kwargs["samples"] = int(wire.get("samples", 10_000))
        kwargs["seed"] = None if seed is None else int(seed)
    try:
        return api.EvalRequest(**kwargs)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


def eval_coalesce_key(request: "api.EvalRequest") -> Optional[str]:
    """In-flight identity of an eval request: ``(fingerprint, backend, plan)``.

    The key is the engine's :func:`~repro.engine.api.request_digest`
    under the *resolved* backend, so two wire bodies coalesce exactly
    when the engine would compute identical statistics for both — and an
    ``auto`` request coalesces with the explicit spelling of whichever
    backend answers it.  None (an unseeded Monte-Carlo draw) disables
    coalescing for the request.
    """
    from repro.engine.backends import resolve_backend

    backend = resolve_backend(request)  # raises for unsupported requests
    digest = api.request_digest(request, backend=backend.name)
    return None if digest is None else f"eval:{digest}"


def offline_eval_payload(wire: Dict, engine=None) -> Dict:
    """Evaluate an ``/eval`` wire body locally — the daemon's oracle.

    ``canonical_bytes(offline_eval_payload(wire))`` is byte-identical to
    the daemon's response body for the same wire request at any
    ``--workers`` value (the benchmark and the CI smoke job assert
    exactly this).
    """
    from repro.engine import evaluate

    return evaluate(build_request(wire), engine).to_json()


# -- /verify -----------------------------------------------------------------

def build_verify_options(wire: Dict) -> Tuple[Optional[List[str]], object]:
    """Turn a ``/verify`` wire body into ``(adder keys, VerifyOptions)``."""
    from repro.verify import LAYERS, VerifyOptions, default_registry

    _check_keys(wire, _VERIFY_KEYS, "verify")
    adders = wire.get("adders")
    if adders is not None:
        if (not isinstance(adders, list)
                or not all(isinstance(a, str) for a in adders)):
            raise ProtocolError("'adders' must be a list of registry keys")
        registry = default_registry()
        unknown = sorted(set(adders) - set(registry))
        if unknown:
            raise ProtocolError(f"unknown adders {unknown}; known: "
                                f"{', '.join(sorted(registry))}")
    try:
        options = VerifyOptions(
            width=int(wire.get("width", DEFAULT_WIDTH)),
            layers=tuple(wire["layers"]) if "layers" in wire else LAYERS,
            seed=int(wire.get("seed", 2015)),
            samples=int(wire.get("samples", 50_000)),
            backend=str(wire.get("backend", "sampling")),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(str(exc)) from exc
    return adders, options


# -- /experiment -------------------------------------------------------------

def build_experiment(wire: Dict) -> Tuple[str, Dict]:
    """Turn an ``/experiment`` wire body into ``(name, run kwargs)``."""
    from repro.experiments import EXPERIMENTS

    _check_keys(wire, _EXPERIMENT_KEYS, "experiment")
    name = wire.get("name")
    if name not in EXPERIMENTS:
        raise ProtocolError(f"unknown experiment {name!r}; registered: "
                            f"{', '.join(sorted(EXPERIMENTS))}")
    kwargs: Dict[str, Any] = {}
    if wire.get("samples") is not None:
        kwargs["samples"] = int(wire["samples"])
    if wire.get("seed") is not None:
        kwargs["seed"] = int(wire["seed"])
    if wire.get("backend") is not None:
        kwargs["backend"] = str(wire["backend"])
    return str(name), kwargs


# -- generic coalescing ------------------------------------------------------

def wire_coalesce_key(endpoint: str, wire: Dict) -> str:
    """Coalescing key for endpoints keyed by their literal wire body.

    ``/verify`` and ``/experiment`` runs are deterministic functions of
    their normalized body, so the canonical-JSON digest is a sound
    in-flight identity (two spellings of the same work that differ
    textually simply coalesce separately — a missed optimisation, never
    a wrong answer).
    """
    digest = hashlib.sha256(
        json.dumps(wire, sort_keys=True).encode()).hexdigest()
    return f"{endpoint}:{digest}"
