"""Client for the evaluation service (``gear client``).

A thin stdlib-only wrapper over :mod:`http.client`: every call opens
one request on a persistent keep-alive connection, posts the wire body
as canonical JSON, and decodes the JSON response.  Non-2xx responses
raise :class:`ServeError` carrying the status and the daemon's
``error`` message.

:func:`replay` drives a mixed request script concurrently (one
connection per thread) and reports per-request latencies plus the
daemon's coalescing counters — the engine behind
``gear client replay`` and ``benchmarks/bench_serve_load.py``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.serve import protocol
from repro.serve.daemon import DEFAULT_HOST, DEFAULT_PORT

__all__ = ["ServeClient", "ServeError", "replay"]


class ServeError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """One keep-alive connection to a serve daemon.

    Not thread-safe — use one client per thread (``replay`` does).
    Usable as a context manager; ``close()`` is idempotent.
    """

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: Optional[http.client.HTTPConnection] = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Tuple[int, bytes]:
        payload = None if body is None else protocol.canonical_bytes(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except (ConnectionError, http.client.HTTPException, OSError):
            # The daemon may have closed a kept-alive connection (drain,
            # idle timeout); retry once on a fresh one.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
        if response.will_close:
            self.close()
        return response.status, data

    def request_raw(self, method: str, path: str,
                    body: Optional[Dict] = None) -> Tuple[int, bytes]:
        """Issue one request; returns ``(status, raw response bytes)``."""
        return self._request(method, path, body)

    def _json(self, method: str, path: str,
              body: Optional[Dict] = None) -> Dict:
        status, data = self._request(method, path, body)
        try:
            payload = json.loads(data.decode())
        except ValueError as exc:  # pragma: no cover - defensive
            raise ServeError(status, f"undecodable response: {exc}")
        if status != 200:
            message = payload.get("error", data.decode()) \
                if isinstance(payload, dict) else data.decode()
            raise ServeError(status, str(message))
        return payload

    # -- endpoints -----------------------------------------------------------

    def eval(self, wire: Dict) -> Dict:
        """POST an ``/eval`` wire body; returns the result payload."""
        return self._json("POST", "/eval", wire)

    def eval_raw(self, wire: Dict) -> bytes:
        """POST ``/eval`` and return the raw canonical response bytes.

        These bytes are what the byte-identity guarantee covers: they
        match ``protocol.canonical_bytes(offline_eval_payload(wire))``.
        """
        status, data = self._request("POST", "/eval", wire)
        if status != 200:
            try:
                message = json.loads(data.decode()).get("error", "")
            except ValueError:
                message = data.decode(errors="replace")
            raise ServeError(status, str(message))
        return data

    def verify(self, wire: Optional[Dict] = None) -> Dict:
        return self._json("POST", "/verify", wire or {})

    def experiment(self, wire: Dict) -> Dict:
        return self._json("POST", "/experiment", wire)

    def healthz(self) -> Dict:
        return self._json("GET", "/healthz")

    def stats(self) -> Dict:
        return self._json("GET", "/stats")


def replay(script: List[Dict], host: str = DEFAULT_HOST,
           port: int = DEFAULT_PORT, concurrency: int = 8,
           timeout: float = 60.0) -> Dict:
    """Replay a request script against a daemon, concurrently.

    ``script`` is a list of ``{"endpoint": "eval"|"verify"|"experiment",
    "body": {...}}`` items (a bare eval wire body is accepted as
    shorthand).  Returns latency and error aggregates plus the daemon's
    coalescing counters sampled before and after the run, so callers
    can attribute hits to this replay.
    """
    items = []
    for i, item in enumerate(script):
        if not isinstance(item, dict):
            raise ValueError(f"script item {i} must be an object")
        if "endpoint" in item:
            endpoint, body = str(item["endpoint"]), item.get("body", {})
        else:
            endpoint, body = "eval", item
        if endpoint not in ("eval", "verify", "experiment"):
            raise ValueError(f"script item {i}: unknown endpoint "
                             f"{endpoint!r}")
        items.append((endpoint, body))

    local = threading.local()

    def client() -> ServeClient:
        if getattr(local, "client", None) is None:
            local.client = ServeClient(host, port, timeout=timeout)
        return local.client

    def one(item: Tuple[str, Dict]) -> Tuple[float, Optional[str]]:
        endpoint, body = item
        t0 = time.perf_counter()
        try:
            getattr(client(), endpoint)(body)
            return time.perf_counter() - t0, None
        except ServeError as exc:
            return time.perf_counter() - t0, str(exc)

    with ServeClient(host, port, timeout=timeout) as probe:
        before = probe.stats()["server"]["coalesce"]
        with ThreadPoolExecutor(max_workers=max(1, int(concurrency))) as pool:
            outcomes = list(pool.map(one, items))
        after = probe.stats()["server"]["coalesce"]

    latencies = sorted(t for t, _ in outcomes)
    errors = [err for _, err in outcomes if err is not None]

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1,
                             max(0, int(q * len(latencies)) - 1))]

    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    total = hits + misses
    return {
        "requests": len(items),
        "errors": errors,
        "latency_s": {
            "p50": pct(0.50),
            "p99": pct(0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
        "coalesce": {
            "hits": hits,
            "misses": misses,
            "rate": hits / total if total else 0.0,
        },
    }
