"""Application execution-time model (Table IV, Fig. 9).

The paper predicts per-application runtimes from three quantities alone:
the adder's path delay, its error probability, and its sub-adder count —
no application simulation needed (that is the §4.4 selling point of the
error model).  With ``n_ops`` additions (one per full-HD pixel):

* approximate time = n_ops · delay                        (no recovery)
* best time        = approximate · (1 + p_err · 1)        (one bad sub-adder)
* average time     = approximate · (1 + p_err · k/2)      (half of them)
* worst time       = approximate · (1 + p_err · (k-1))    (all of them)

where each erroneous addition pays one extra cycle per corrected
sub-adder (§3.3).  These formulas reproduce every entry of Table IV from
its delay and probability columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.utils.validation import check_pos_int, check_prob

#: Additions per frame in the paper's applications: one per full-HD pixel.
FULL_HD_PIXELS = 1920 * 1080


def correction_cycle_counts(k: int) -> Dict[str, float]:
    """Extra correction cycles per erroneous addition for best/avg/worst.

    Best case assumes a single erring sub-adder (1 cycle), worst assumes
    all k-1 speculative sub-adders err (k-1 cycles), average assumes half
    of the k sub-adders (k/2 cycles) — the paper's three scenarios.
    """
    check_pos_int("k", k)
    return {"best": 1.0, "average": k / 2.0, "worst": float(k - 1)}


@dataclass(frozen=True)
class ExecutionTiming:
    """Predicted execution times, in seconds, for one adder configuration."""

    name: str
    delay_ns: float
    error_probability: float
    k: int
    n_ops: int

    @property
    def approximate_s(self) -> float:
        """Runtime without error recovery."""
        return self.n_ops * self.delay_ns * 1e-9

    def corrected_s(self, scenario: str) -> float:
        """Runtime with error recovery under a best/average/worst scenario."""
        cycles = correction_cycle_counts(self.k)
        if scenario not in cycles:
            raise KeyError(f"scenario must be one of {sorted(cycles)}, got {scenario!r}")
        return self.approximate_s * (1.0 + self.error_probability * cycles[scenario])

    @property
    def best_s(self) -> float:
        return self.corrected_s("best")

    @property
    def average_s(self) -> float:
        return self.corrected_s("average")

    @property
    def worst_s(self) -> float:
        return self.corrected_s("worst")


def execution_timings(
    name: str,
    delay_ns: float,
    error_probability: float,
    k: int,
    n_ops: int = FULL_HD_PIXELS,
) -> ExecutionTiming:
    """Build an :class:`ExecutionTiming` with validated inputs."""
    if delay_ns <= 0:
        raise ValueError(f"delay_ns must be positive, got {delay_ns}")
    check_prob("error_probability", error_probability)
    check_pos_int("k", k)
    check_pos_int("n_ops", n_ops)
    return ExecutionTiming(
        name=name,
        delay_ns=delay_ns,
        error_probability=error_probability,
        k=k,
        n_ops=n_ops,
    )
