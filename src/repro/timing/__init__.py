"""FPGA resource characterisation and application-level execution timing."""

from repro.timing.fpga import (
    AdderCharacterization,
    FPGA_DELAY_MODEL,
    characterize,
    characterize_netlist,
)
from repro.timing.latency import (
    FULL_HD_PIXELS,
    ExecutionTiming,
    correction_cycle_counts,
    execution_timings,
)

__all__ = [
    "AdderCharacterization",
    "FPGA_DELAY_MODEL",
    "characterize",
    "characterize_netlist",
    "FULL_HD_PIXELS",
    "ExecutionTiming",
    "correction_cycle_counts",
    "execution_timings",
]
