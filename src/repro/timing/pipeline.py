"""Discrete-event validation of the Table IV execution-time model.

Table IV *predicts* application runtimes as
``n_ops · delay · (1 + p_err · c)`` without simulating anything — the
paper's argument for having an error model at all.  This module closes the
loop: a cycle-accurate simulation of a variable-latency addition pipeline
(speculative result in one cycle; on detection, the pipeline stalls one
extra cycle per corrected sub-adder, §3.3) measures the *actual* cycles an
operand stream costs, which the benches compare against the formula.

The simulator is intentionally minimal — a single adder stage with
stall-on-correct semantics — because that is exactly the machine the
paper's formula describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.correction import ErrorCorrector
from repro.core.gear import GeArAdder
from repro.timing.latency import correction_cycle_counts
from repro.utils.distributions import OperandDistribution, UniformOperands
from repro.utils.validation import check_pos_int


@dataclass(frozen=True)
class PipelineRun:
    """Measured cost of streaming ``operations`` additions."""

    adder_name: str
    operations: int
    total_cycles: int
    corrected_operations: int
    total_corrections: int

    @property
    def cycles_per_op(self) -> float:
        return self.total_cycles / self.operations

    @property
    def stall_fraction(self) -> float:
        """Fraction of cycles spent in correction stalls."""
        return 1.0 - self.operations / self.total_cycles

    def runtime_seconds(self, delay_ns: float) -> float:
        """Wall time at one pipeline cycle per adder critical path."""
        return self.total_cycles * delay_ns * 1e-9


def simulate_pipeline(
    adder: GeArAdder,
    operations: int,
    seed: Optional[int] = 2015,
    distribution: Optional[OperandDistribution] = None,
    enabled: Optional[list] = None,
) -> PipelineRun:
    """Run ``operations`` additions through the stall-on-correct pipeline.

    Every addition costs one cycle; an addition whose (enabled) detectors
    fire costs one extra cycle per corrected sub-adder, exactly as §3.3's
    sequential correction does.  The returned cycle totals therefore equal
    the sum of the behavioural corrector's per-addition cycle counts.
    """
    check_pos_int("operations", operations)
    dist = distribution or UniformOperands(adder.width)
    a, b = dist.sample_pairs(operations, seed=seed)
    result = ErrorCorrector(adder, enabled=enabled).add(a, b)
    cycles = np.asarray(result.cycles)
    corrections = np.asarray(result.corrections)
    return PipelineRun(
        adder_name=adder.name,
        operations=operations,
        total_cycles=int(cycles.sum()),
        corrected_operations=int(np.count_nonzero(corrections)),
        total_corrections=int(corrections.sum()),
    )


@dataclass(frozen=True)
class ModelComparison:
    """Measured pipeline cost vs the Table IV analytic scenarios."""

    measured_cycles_per_op: float
    predicted_best: float
    predicted_average: float
    predicted_worst: float

    @property
    def within_envelope(self) -> bool:
        """True when the measurement falls inside [best, worst]."""
        return (
            self.predicted_best - 1e-9
            <= self.measured_cycles_per_op
            <= self.predicted_worst + 1e-9
        )


def compare_with_model(
    adder: GeArAdder,
    operations: int = 100_000,
    seed: Optional[int] = 2015,
    distribution: Optional[OperandDistribution] = None,
) -> ModelComparison:
    """Measure the pipeline and evaluate the paper's three scenarios.

    The analytic scenarios cost each erroneous addition 1 (best), k/2
    (average) or k-1 (worst) extra cycles at the *analytic* error
    probability; the measurement uses the actual per-addition correction
    counts.
    """
    run = simulate_pipeline(adder, operations, seed=seed,
                            distribution=distribution)
    k = adder.config.k
    p_err = adder.error_probability()
    scenarios = correction_cycle_counts(k)
    return ModelComparison(
        measured_cycles_per_op=run.cycles_per_op,
        predicted_best=1.0 + p_err * scenarios["best"],
        predicted_average=1.0 + p_err * scenarios["average"],
        predicted_worst=1.0 + p_err * scenarios["worst"],
    )
