"""FPGA delay/area characterisation of adder netlists.

Substitutes the paper's Xilinx ISE + Virtex-6 synthesis flow: the adder's
netlist is optimised (structural hashing shares the propagate/generate
terms that overlapping sub-adders duplicate), its LUT count is estimated by
cone packing, and its critical path is timed by static timing analysis
under a Virtex-6-flavoured delay model.

Calibration: the delay-model constants are chosen so the 16-bit RCA lands
near the paper's 1.365 ns and a 10-bit sub-adder near 1.22 ns (Table IV).
Absolute agreement is not the goal — the paper's own conclusions rest on
*orderings* (GeAr ≈ ACA-II < ACA-I < RCA < GDA in delay; RCA < GeAr ≈
ACA-II < ACA-I < GDA in area), which this model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.adders.base import AdderModel
from repro.rtl.area import estimate_luts
from repro.rtl.netlist import Netlist
from repro.rtl.opt import optimize
from repro.rtl.sta import DelayModel, FpgaDelayModel, critical_path_delay

#: Default delay model, calibrated against Table IV's RCA / sub-adder rows
#: (16-bit RCA ≈ 1.365 ns, 10-bit sub-adder ≈ 1.22 ns) and Table II's GDA
#: CLA-prediction delays.
FPGA_DELAY_MODEL = FpgaDelayModel(
    lut_delay=0.25,
    carry_delay=0.012,
    mux_delay=0.20,
    net_delay=0.20,
    io_delay=0.50,
)


@dataclass(frozen=True)
class AdderCharacterization:
    """Synthesis-style summary of one adder implementation.

    Attributes:
        name: adder display name.
        delay_ns: critical-path delay of the sum datapath (bus ``S``).
        luts: estimated 6-input LUT count.
        gates: logic-gate count of the optimised netlist.
        logic_depth: unit-delay depth of the sum datapath.
    """

    name: str
    delay_ns: float
    luts: int
    gates: int
    logic_depth: int

    @property
    def delay_seconds(self) -> float:
        return self.delay_ns * 1e-9

    def delay_area_product(self) -> float:
        return self.delay_ns * self.luts


def characterize_netlist(
    netlist: Netlist,
    name: Optional[str] = None,
    delay_model: Optional[DelayModel] = None,
    lut_inputs: int = 6,
) -> AdderCharacterization:
    """Characterise an arbitrary netlist (sum datapath = bus ``S`` if present)."""
    from repro.rtl.sta import UnitDelayModel

    model = delay_model or FPGA_DELAY_MODEL
    opt = optimize(netlist)
    buses = ["S"] if "S" in opt.output_buses else None
    return AdderCharacterization(
        name=name or netlist.name,
        delay_ns=critical_path_delay(opt, model, buses=buses),
        luts=estimate_luts(opt, k=lut_inputs),
        gates=len(opt.logic_gates()),
        logic_depth=int(critical_path_delay(opt, UnitDelayModel(), buses=buses)),
    )


def characterize(
    adder: AdderModel,
    delay_model: Optional[DelayModel] = None,
    lut_inputs: int = 6,
) -> AdderCharacterization:
    """Characterise an adder via its netlist.

    Raises :class:`ValueError` when the adder has no netlist model (e.g.
    behavioural-only baselines).
    """
    netlist = adder.build_netlist()
    if netlist is None:
        raise ValueError(f"{adder.name} does not provide a netlist model")
    return characterize_netlist(netlist, name=adder.name,
                                delay_model=delay_model, lut_inputs=lut_inputs)
