"""Bench (ablation): GeAr with RCA vs CLA sub-adders (§4.4's ASIC remark).

"Our GeAr model is not specific to any particular sub-adder implementation
... for an ASIC implementation an n-bit CLA [may be] faster."  We build
GeAr(16, 4, P) with both sub-adder styles and time them under two delay
models: the FPGA model (dedicated carry chains → RCA wins) and the
unit-delay model as an ASIC logic-depth proxy (CLA's shallow trees win).
"""

from repro.analysis.tables import format_table
from repro.rtl.builders import build_gear
from repro.rtl.sta import UnitDelayModel, critical_path_delay
from repro.timing.fpga import FPGA_DELAY_MODEL


def _run():
    rows = []
    for p in (2, 4, 8):
        strict = (16 - 4 - p) % 4 == 0
        for style in ("rca", "cla"):
            nl = build_gear(16, 4, p, sub_adder=style, allow_partial=not strict)
            rows.append(
                {
                    "p": p,
                    "style": style,
                    "fpga_ns": critical_path_delay(nl, FPGA_DELAY_MODEL,
                                                   buses=["S"]),
                    "depth": critical_path_delay(nl, UnitDelayModel(),
                                                 buses=["S"]),
                }
            )
    return rows


def test_ablation_subadder_style(benchmark, archive):
    rows = benchmark(_run)
    archive(
        "ablation_subadder",
        format_table(
            ["P", "sub-adder", "FPGA delay ns", "logic depth"],
            [(r["p"], r["style"], f"{r['fpga_ns']:.3f}", int(r["depth"]))
             for r in rows],
            title="Ablation — GeAr(16,4,P) sub-adder style: FPGA vs logic depth",
        ),
    )

    for p in (2, 4, 8):
        rca = next(r for r in rows if r["p"] == p and r["style"] == "rca")
        cla = next(r for r in rows if r["p"] == p and r["style"] == "cla")
        # FPGA: the dedicated carry chain wins (the paper's Table I setting).
        assert rca["fpga_ns"] < cla["fpga_ns"]
        # ASIC proxy: CLA's logarithmic depth wins (the §4.4 remark).
        assert cla["depth"] < rca["depth"]
