"""Bench: Table II — GDA vs GeAr for 8-bit adders.

Workload: the paper's eight (M_B/R, M_C/P) pairs; NED by exhaustive
65 536-pair simulation, delay/LUTs from netlist characterisation (GDA with
genuine CLA prediction units).  Asserts identical error behaviour at equal
parameters and GDA's delay/area penalty.
"""

import pytest

from repro.experiments.table2 import render_table2, run_table2


def test_table2_gda_vs_gear(benchmark, archive):
    rows = benchmark(run_table2)
    archive("table2", render_table2(rows))

    gda = {(r.r, r.p): r for r in rows if r.architecture == "GDA"}
    gear = {(r.r, r.p): r for r in rows if r.architecture == "GeAr"}
    assert set(gda) == set(gear)

    for key in gda:
        # Identical accuracy at equal parameters (Table II's NED columns).
        assert gda[key].med == pytest.approx(gear[key].med, rel=1e-9)
        # GDA pays delay for CLA prediction.
        assert gda[key].delay_ns >= gear[key].delay_ns

    # The paper-normalised NED reproduces the printed values on the
    # reference entries.
    expected = {(1, 3): 0.0585, (1, 4): 0.0273, (1, 5): 0.0117,
                (1, 6): 0.0039, (2, 2): 0.1171, (2, 4): 0.0234}
    for key, value in expected.items():
        assert gear[key].ned_paper_convention == pytest.approx(value, abs=2e-3)

    # NED halves (roughly) per extra prediction bit for R=1.
    neds = [gear[(1, p)].ned_paper_convention for p in range(1, 7)]
    assert neds == sorted(neds, reverse=True)
    assert neds[0] / neds[-1] > 30
