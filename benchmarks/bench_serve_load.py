"""Bench (load): the evaluation service under mixed concurrent traffic.

Not a paper artefact — this replays thousands of mixed requests (a mix
of hot repeated evals, a cold per-request tail and periodic verify
calls) against an in-process ``gear serve`` daemon with a two-process
warm worker pool, and reports p50/p99 latency plus the coalescing rate.

Acceptance gates, checked here and in the CI ``serve-smoke`` job via
``python benchmarks/bench_serve_load.py``:

* the coalescer deduplicates in-flight work (``hits > 0``),
* warm-cache p50 stays under ``MAX_WARM_P50_S`` — a repeated request
  must cost a digest lookup, not a recomputation,
* every served ``/eval`` body is byte-identical to the offline engine's
  canonical JSON for the same wire request.
"""

import json
import random
import time

import pytest

from repro.serve import ServeClient, ServeDaemon, protocol, start_background
from repro.serve.client import replay

#: Total requests in the replay (the issue's floor is 1000).
REQUESTS = 1200

#: Client-side concurrency for the replay.
CONCURRENCY = 16

#: Worker processes behind the daemon.
WORKERS = 2

#: Warm-cache p50 ceiling: a repeated (coalesced or memoised) request
#: is a hash lookup plus HTTP round trip, never a recomputation.
MAX_WARM_P50_S = 0.25

#: Distinct hot eval bodies — repeated often enough that concurrent
#: duplicates are guaranteed at CONCURRENCY clients.
HOT_WIRES = [
    {"adder": "gear_r2p2", "samples": 20_000, "seed": 2015},
    {"adder": {"gear": [12, 4, 4]}, "samples": 20_000, "seed": 2015},
    {"adder": {"family": "etaii_l4", "width": 8}, "samples": 20_000,
     "seed": 2015, "backend": "auto"},
]

#: One cheap verify body mixed into the stream.
VERIFY_WIRE = {"adders": ["gear_r2p2"], "layers": ["behavioural"],
               "width": 6}


def _script(requests: int = REQUESTS):
    """The mixed request script: ~80% hot evals, ~15% cold, ~5% verify."""
    rng = random.Random(2015)
    script = []
    for i in range(requests):
        roll = rng.random()
        if roll < 0.80:
            script.append({"endpoint": "eval",
                           "body": rng.choice(HOT_WIRES)})
        elif roll < 0.95:
            # Cold tail: distinct seeds never coalesce with each other.
            script.append({"endpoint": "eval",
                           "body": {"adder": "gear_r2p2", "samples": 2_000,
                                    "seed": 10_000 + i}})
        else:
            script.append({"endpoint": "verify", "body": VERIFY_WIRE})
    return script


def run_load(requests: int = REQUESTS, verbose: bool = False):
    """Run the load replay against a fresh daemon; returns the summary."""
    daemon = ServeDaemon(port=0, workers=WORKERS)
    thread = start_background(daemon)
    try:
        with ServeClient(port=daemon.port) as client:
            # Warm the pool (model resolution, first evaluation) so the
            # measured replay sees steady-state latency.
            for wire in HOT_WIRES:
                client.eval(wire)
            served = client.eval_raw(HOT_WIRES[0])
        offline = protocol.canonical_bytes(
            protocol.offline_eval_payload(HOT_WIRES[0]))

        start = time.perf_counter()
        summary = replay(_script(requests), port=daemon.port,
                         concurrency=CONCURRENCY)
        summary["wall_s"] = time.perf_counter() - start
        summary["byte_identical"] = served == offline
    finally:
        daemon.stop()
        thread.join(timeout=30)

    if verbose:
        lat = summary["latency_s"]
        coal = summary["coalesce"]
        print(f"workload: {summary['requests']} requests, "
              f"{CONCURRENCY} clients, {WORKERS} workers")
        print(f"wall time: {summary['wall_s']:.2f} s "
              f"({summary['requests'] / summary['wall_s']:.0f} req/s)")
        print(f"latency: p50={lat['p50'] * 1e3:.1f} ms  "
              f"p99={lat['p99'] * 1e3:.1f} ms  "
              f"max={lat['max'] * 1e3:.1f} ms")
        print(f"coalescing: {coal['hits']} hits / {coal['misses']} misses "
              f"(rate {coal['rate']:.2%})")
        print(f"served vs offline bytes: "
              f"{'identical' if summary['byte_identical'] else 'DIFFER'}")
        print(f"errors: {len(summary['errors'])}")
    return summary


def _check(summary) -> bool:
    return (not summary["errors"]
            and summary["byte_identical"]
            and summary["coalesce"]["hits"] > 0
            and summary["latency_s"]["p50"] <= MAX_WARM_P50_S)


@pytest.fixture(scope="module")
def load_summary():
    return run_load()


def test_serve_load_coalesces(load_summary):
    assert load_summary["coalesce"]["hits"] > 0


def test_serve_load_warm_p50(load_summary):
    assert load_summary["latency_s"]["p50"] <= MAX_WARM_P50_S


def test_serve_load_byte_identity_and_errors(load_summary):
    assert load_summary["byte_identical"]
    assert load_summary["errors"] == []


if __name__ == "__main__":
    import sys

    summary = run_load(verbose=True)
    print(json.dumps({k: summary[k] for k in
                      ("requests", "latency_s", "coalesce", "wall_s")},
                     indent=2, sort_keys=True))
    sys.exit(0 if _check(summary) else 1)
