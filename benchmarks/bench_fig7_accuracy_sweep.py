"""Bench: Fig. 7 — probabilistic accuracy vs prediction bits (N=16).

Workload: the four panels R ∈ {2, 3, 4, 8}, sweeping P with the analytic
error model.  Asserts monotone accuracy, GDA's sparse subset, and the
specific percentages §4.1 quotes from the figure.
"""

import pytest

from repro.experiments.fig7 import render_fig7, run_fig7


def test_fig7_accuracy_sweep(benchmark, archive):
    panels = benchmark(run_fig7)
    archive("fig7", render_fig7(panels))

    assert set(panels) == {2, 3, 4, 8}
    for r, points in panels.items():
        accs = [pt.accuracy_pct for pt in points]
        assert accs == sorted(accs)          # more P, more accuracy
        assert accs[-1] > 99.0               # deepest prediction ~exact
        gda_points = [pt for pt in points if pt.gda]
        assert gda_points                     # GDA reaches some points...
        assert len(gda_points) < len(points)  # ...but not all (the gap)
        assert all(pt.p % r == 0 for pt in gda_points)

    acc = {(pt.r, pt.p): pt.accuracy_pct
           for pts in panels.values() for pt in pts}
    # §4.1's quoted numbers: ~51 % at (2,2), ~97 % at (2,6), ~94 % at (4,4).
    assert acc[(2, 2)] == pytest.approx(52.2, abs=2.5)
    assert acc[(2, 6)] == pytest.approx(97.0, abs=1.0)
    assert acc[(4, 4)] == pytest.approx(94.0, abs=1.5)
    # And the (2,6) > (4,4) comparison at equal sub-adder length L=8.
    assert acc[(2, 6)] > acc[(4, 4)]
