"""Bench (extension): accuracy-configurable multiplication.

Builds 8×8 array multipliers whose partial-product reduction uses GeAr
configurations, sweeping the (R, P) knob, and measures product quality
(MRED) against the reduction adder's analytic error probability — the
paper's configurability story lifted one operator up.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.multiplier import make_exact_multiplier, make_gear_multiplier

CONFIGS = [(2, 2), (2, 6), (4, 4), (4, 8), (4, 12), (8, 8)]
SAMPLES = 8000


def _run():
    rows = []
    exact = make_exact_multiplier(8)
    rng = np.random.default_rng(3)
    a = rng.integers(0, 256, SAMPLES, dtype=np.int64)
    b = rng.integers(0, 256, SAMPLES, dtype=np.int64)
    assert np.array_equal(np.asarray(exact.multiply(a, b)), a * b)
    for r, p in CONFIGS:
        mul = make_gear_multiplier(8, r, p)
        err = np.abs(np.asarray(mul.multiply(a, b)) - a * b)
        rows.append(
            {
                "config": (r, p),
                "adder_p_err": mul.adder.error_probability(),
                "mred": float(np.mean(err / np.maximum(a * b, 1))),
                "error_rate": float(np.mean(err > 0)),
                "max_ed": int(err.max()),
            }
        )
    return rows


def test_multiplier_quality(benchmark, archive):
    rows = benchmark(_run)
    archive(
        "multiplier_quality",
        format_table(
            ["GeAr (R,P) @16b", "adder p(err)", "product MRED",
             "product err rate", "max ED"],
            [
                (str(r["config"]), f"{r['adder_p_err']:.5f}",
                 f"{r['mred']:.5f}", f"{r['error_rate']:.4f}", r["max_ed"])
                for r in rows
            ],
            title="Extension — 8×8 multiplier quality vs reduction-adder config",
        ),
    )

    by_cfg = {r["config"]: r for r in rows}
    # The (R, P) knob carries through: deeper prediction, better products.
    assert by_cfg[(2, 2)]["mred"] > by_cfg[(2, 6)]["mred"]
    assert by_cfg[(4, 4)]["mred"] > by_cfg[(4, 8)]["mred"] >= by_cfg[(4, 12)]["mred"]
    # Accurate configs give usable multipliers (<0.1 % relative error).
    assert by_cfg[(4, 12)]["mred"] < 1e-3
    # Product error rate exceeds the per-addition probability (8 reductions).
    assert by_cfg[(4, 4)]["error_rate"] > by_cfg[(4, 4)]["adder_p_err"]
