"""Bench: Fig. 8 — Delay × NED of GeAr vs GDA per 8-bit configuration.

Workload: derived from the Table II rows.  Asserts the figure's claim:
GeAr achieves the better (lower) Delay×NED on every configuration.
"""

from repro.experiments.fig8 import render_fig8, run_fig8
from repro.experiments.table2 import run_table2


def test_fig8_delay_ned(benchmark, archive):
    rows = run_table2()
    points = benchmark(run_fig8, rows)
    archive("fig8", render_fig8(points))

    assert len(points) == 8
    for pt in points:
        assert pt.gear_wins, f"GDA beat GeAr at ({pt.r},{pt.p})"
    # At least half the configurations show a >1.3x advantage, echoing the
    # paper's chart where GDA bars tower over GeAr's.
    strong = [pt for pt in points if pt.improvement > 1.3]
    assert len(strong) >= len(points) // 2
