"""Bench: Table I — 16-bit Image Integral accuracy comparison.

Workload: per-row prefix sums over a seeded synthetic image (rows sized so
exact sums fit 16 bits), for all ten Table I adder columns.  Asserts the
paper's orderings: accuracy grows with P, GDA and GeAr tie at equal
parameters, GeAr(4,6) wins Delay×NED, and only GDA is slower than RCA.
"""

import pytest

from repro.experiments.table1 import (
    default_table1_image,
    render_table1,
    run_table1,
)


def test_table1_image_integral(benchmark, archive):
    image = default_table1_image(rows=48, seed=42)
    rows = benchmark(run_table1, image)
    archive("table1", render_table1(rows))

    by_name = {r.name: r for r in rows}

    # RCA is the exact benchmark.
    assert by_name["RCA"].stats.med == 0.0
    assert by_name["RCA"].stats.maa(1.0) == 100.0

    # Accuracy columns improve monotonically with P (GeAr family).
    meds = [by_name[f"GeAr(4,{p})"].stats.med for p in (2, 4, 6, 8)]
    assert meds == sorted(meds, reverse=True)

    # Equal-parameter equivalences of Table I.
    assert by_name["GDA(4,4)"].stats.med == pytest.approx(
        by_name["GeAr(4,4)"].stats.med, rel=1e-9)
    assert by_name["GDA(4,8)"].stats.med == pytest.approx(
        by_name["GeAr(4,8)"].stats.med, rel=1e-9)
    assert by_name["ACA-II"].stats.med == pytest.approx(
        by_name["GeAr(4,4)"].stats.med, rel=1e-9)

    # Delay orderings: GeAr fastest family, GDA slower than RCA.
    assert by_name["GeAr(4,2)"].delay_ns <= by_name["RCA"].delay_ns
    assert by_name["GDA(4,4)"].delay_ns > by_name["RCA"].delay_ns
    assert by_name["GDA(4,8)"].delay_ns > by_name["GDA(4,4)"].delay_ns

    # Figure of merit: a high-P GeAr configuration achieves the best
    # Delay×NED among the approximate adders (the paper's last row names
    # GeAr(4,6); on our synthetic image GeAr(4,8) can edge it out, but the
    # winner is always a GeAr and beats every non-GeAr adder clearly).
    approx_rows = [r for r in rows if r.name != "RCA"]
    best = min(approx_rows, key=lambda r: r.delay_ned_product)
    assert best.name in ("GeAr(4,6)", "GeAr(4,8)")
    best_other = min(
        (r for r in approx_rows if not r.name.startswith("GeAr")),
        key=lambda r: r.delay_ned_product,
    )
    assert best.delay_ned_product < best_other.delay_ned_product
