"""Bench (micro): observability overhead on the engine hot path.

Not a paper artefact — this quantifies the cost of the ``repro.obs``
instrumentation baked into the engine/verify/RTL hot paths, and asserts
the subsystem's two overhead guarantees on an engine sweep workload:

* **disabled** (the default ``NULL`` collector): < 2 % of sweep runtime.
  There is no un-instrumented build to diff against, so the disabled
  cost is measured directly: an enabled run counts every obs API call
  the workload makes (``Collector.api_calls``), a micro-bench times the
  no-op call on the ``NULL`` collector, and the product bounds the total
  disabled-path overhead.
* **enabled** (a live ``Collector``): < 10 % versus the disabled run,
  measured as a min-of-N wall-clock ratio of the same sweep.

Run with::

    pytest benchmarks/bench_obs_overhead.py -s
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core.gear import GeArAdder, GeArConfig
from repro.engine import Engine, EvalRequest

SAMPLES = 120_000
SEED = 11
REPEATS = 5

# CI-safe ceilings: the ISSUE targets are 2 % / 10 %; asserts get a small
# amount of headroom for shared-runner noise while staying the same order.
DISABLED_LIMIT = 0.02
ENABLED_LIMIT = 0.10


def _sweep(engine: Engine) -> int:
    """A small accuracy sweep: the workload the overhead is judged on."""
    total = 0
    for p in (4, 6, 8):
        adder = GeArAdder(GeArConfig(16, 2, p - 2))
        total += engine.evaluate(
            EvalRequest.monte_carlo(adder, SAMPLES, seed=SEED)
        ).stats.samples
    return total


def _min_wall_time(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def disabled_time():
    engine = Engine(jobs=1)
    assert obs.get_collector() is obs.NULL
    return _min_wall_time(lambda: _sweep(engine))


def _noop_call_cost() -> float:
    """Seconds per obs API call on the NULL collector (min-of-N)."""
    null = obs.NULL
    n = 200_000
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(n):
            null.count("engine.cache.hit")
        best = min(best, time.perf_counter() - t0)
    return best / n


def _api_calls_in_sweep() -> int:
    collector = obs.Collector()
    obs.set_collector(collector)
    try:
        _sweep(Engine(jobs=1))
    finally:
        obs.set_collector(obs.NULL)
    return collector.api_calls


def test_disabled_path_overhead_below_2_percent(disabled_time, archive):
    calls = _api_calls_in_sweep()
    per_call = _noop_call_cost()
    overhead = calls * per_call
    fraction = overhead / disabled_time
    archive(
        "bench_obs_overhead_disabled",
        "\n".join([
            "obs disabled-path overhead (engine sweep)",
            f"  sweep wall time      : {disabled_time * 1e3:9.2f} ms",
            f"  obs API call sites   : {calls:9d} calls",
            f"  no-op call cost      : {per_call * 1e9:9.1f} ns",
            f"  total no-op overhead : {overhead * 1e3:9.3f} ms",
            f"  fraction of runtime  : {fraction * 100:9.3f} %",
        ]),
    )
    assert fraction < DISABLED_LIMIT


def test_enabled_path_overhead_below_10_percent(disabled_time, archive):
    engine = Engine(jobs=1)

    def enabled_sweep():
        with obs.collecting():
            _sweep(engine)

    enabled_time = _min_wall_time(enabled_sweep)
    ratio = enabled_time / disabled_time
    archive(
        "bench_obs_overhead_enabled",
        "\n".join([
            "obs enabled-path overhead (engine sweep)",
            f"  disabled wall time : {disabled_time * 1e3:9.2f} ms",
            f"  enabled wall time  : {enabled_time * 1e3:9.2f} ms",
            f"  ratio              : {ratio:9.3f} x",
        ]),
    )
    assert ratio < 1.0 + ENABLED_LIMIT
