"""Bench (ablation): §3.3 selective error correction.

Workload: GeAr(16,2,2) (k=7) over 50 000 uniform additions, sweeping the
error-control enable mask from no correction to full correction (MSB
first).  Asserts the latency/accuracy trade-off the control signal exists
to provide.
"""

from repro.experiments.ablation import (
    render_correction_policy_ablation,
    run_correction_policy_ablation,
)


def test_ablation_correction_policy(benchmark, archive):
    rows = benchmark(run_correction_policy_ablation)
    archive("ablation_correction", render_correction_policy_ablation(rows))

    # Residual error falls monotonically as sub-adders are enabled...
    neds = [r.residual_ned for r in rows]
    assert neds == sorted(neds, reverse=True)
    # ...while cycle cost rises monotonically.
    cycles = [r.mean_cycles for r in rows]
    assert cycles == sorted(cycles)

    # Endpoints: no correction = 1 cycle; full correction = exact.
    assert rows[0].mean_cycles == 1.0
    assert rows[-1].residual_error_rate == 0.0

    # The first MSB enable removes the most NED per cycle spent — the
    # rationale for MSB-first selective correction.
    gain_first = rows[0].residual_ned - rows[1].residual_ned
    gain_last = rows[-2].residual_ned - rows[-1].residual_ned
    assert gain_first > gain_last
