"""Bench (micro): spec-derived model dispatch overhead on an engine sweep.

Not a paper artefact — this guards the AdderSpec refactor's performance
contract: a model compiled from the declarative IR (``spec.to_model()``)
must cost no more than **2 %** over the legacy hand-written class on an
engine sweep workload, measured as a min-of-N wall-clock ratio of the
same sweep.  Both sides run identical geometry (equal fingerprints), so
any gap is pure dispatch/abstraction overhead, not workload drift.

Run with::

    pytest benchmarks/bench_spec_dispatch.py -s
"""

from __future__ import annotations

import time

import pytest

from repro.core.gear import GeArAdder, GeArConfig
from repro.engine import Engine, EvalRequest
from repro.spec.catalog import gear_spec

SAMPLES = 120_000
SEED = 11
REPEATS = 5

# CI-safe ceiling: the ISSUE target is 2 %; same order, no extra headroom —
# both sides share the vectorised WindowedSpeculativeAdder hot path, so the
# true gap is far below the limit.
DISPATCH_LIMIT = 0.02

GEOMETRIES = [(16, 2, 2), (16, 2, 4), (16, 2, 6)]


def _legacy_adders():
    return [GeArAdder(GeArConfig(n, r, p)) for n, r, p in GEOMETRIES]


def _spec_adders():
    return [gear_spec(n, r, p).to_model() for n, r, p in GEOMETRIES]


def _sweep(engine: Engine, adders) -> int:
    """A small accuracy sweep: the workload the overhead is judged on."""
    total = 0
    for adder in adders:
        total += engine.evaluate(
            EvalRequest.monte_carlo(adder, SAMPLES, seed=SEED)
        ).stats.samples
    return total


def _min_wall_time(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_spec_models_match_legacy_fingerprints():
    for legacy, spec in zip(_legacy_adders(), _spec_adders()):
        assert legacy.fingerprint() == spec.fingerprint()


def test_spec_dispatch_overhead_below_2_percent(archive):
    engine = Engine(jobs=1)
    legacy = _legacy_adders()
    spec = _spec_adders()

    legacy_time = _min_wall_time(lambda: _sweep(engine, legacy))
    spec_time = _min_wall_time(lambda: _sweep(engine, spec))
    ratio = spec_time / legacy_time
    archive(
        "bench_spec_dispatch",
        "\n".join([
            "spec-model dispatch overhead (engine sweep)",
            f"  legacy wall time : {legacy_time * 1e3:9.2f} ms",
            f"  spec wall time   : {spec_time * 1e3:9.2f} ms",
            f"  ratio            : {ratio:9.3f} x",
        ]),
    )
    assert ratio < 1.0 + DISPATCH_LIMIT
