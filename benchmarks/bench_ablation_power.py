"""Bench (ablation): switching energy vs accuracy across adders.

The paper's introduction promises performance *and power* benefits from
approximation.  This ablation measures relative dynamic energy (toggle ×
capacitance) for the Table I adder families under a common operand stream,
exposing the nuance: speculative adders pay a small energy premium for
their redundant windows — their win is the shorter critical path (which
enables voltage/frequency scaling), while CLA-heavy designs (GDA) lose on
both axes.
"""

from repro.adders import (
    AccuracyConfigurableAdder,
    CarryLookaheadAdder,
    GracefullyDegradingAdder,
    RippleCarryAdder,
)
from repro.analysis.tables import format_table
from repro.core.gear import GeArAdder, GeArConfig
from repro.rtl.power import characterize_power
from repro.timing.fpga import characterize

SAMPLES = 3000


def _run():
    adders = [
        RippleCarryAdder(16),
        GeArAdder(GeArConfig(16, 4, 4)),
        GeArAdder(GeArConfig(16, 2, 2)),
        GeArAdder(GeArConfig(16, 4, 8)),
        AccuracyConfigurableAdder(16, 8),
        GracefullyDegradingAdder(16, 4, 8),
        CarryLookaheadAdder(16),
    ]
    rows = []
    for adder in adders:
        power = characterize_power(adder, samples=SAMPLES, seed=7)
        char = characterize(adder)
        prob = adder.error_probability()
        rows.append(
            {
                "name": adder.name,
                "energy": power.energy_per_op,
                "delay": char.delay_ns,
                "edp": power.energy_per_op * char.delay_ns,
                "p_err": prob if prob is not None else float("nan"),
            }
        )
    return rows


def test_ablation_power(benchmark, archive):
    rows = benchmark(_run)
    archive(
        "ablation_power",
        format_table(
            ["adder", "energy/op", "delay ns", "energy×delay", "p(err)"],
            [
                (r["name"], f"{r['energy']:.2f}", f"{r['delay']:.3f}",
                 f"{r['edp']:.2f}", f"{r['p_err']:.4f}")
                for r in rows
            ],
            title="Ablation — relative dynamic energy vs accuracy (16-bit)",
        ),
    )

    by_name = {r["name"]: r for r in rows}
    rca = by_name["RCA(N=16)"]
    gda = by_name["GDA(N=16,MB=4,MC=8)"]
    cla = by_name["CLA(N=16)"]
    gear = by_name["GeAr(N=16,R=4,P=4)"]

    # CLA-style logic is the energy hog; GDA inherits part of that.
    assert cla["energy"] > rca["energy"]
    assert gda["energy"] > gear["energy"]
    # GeAr's redundant windows cost bounded extra energy vs RCA (< 60 %)...
    assert gear["energy"] < rca["energy"] * 1.6
    # ...and its energy-delay product beats GDA's clearly.
    assert gear["edp"] < gda["edp"] / 1.5
