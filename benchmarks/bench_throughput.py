"""Bench (micro): raw model throughput.

Not a paper artefact — these time the library's own hot paths so
performance regressions in the vectorised adders, the error-model DP and
the netlist simulator are caught.
"""

import numpy as np
import pytest

from repro.core.correction import ErrorCorrector
from repro.core.error_model import error_probability, error_probability_exact
from repro.core.gear import GeArAdder, GeArConfig
from repro.rtl.sim import simulate_bus

BATCH = 200_000


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(1)
    a = rng.integers(0, 1 << 16, size=BATCH, dtype=np.int64)
    b = rng.integers(0, 1 << 16, size=BATCH, dtype=np.int64)
    return a, b


def test_vectorised_gear_add_throughput(benchmark, operands):
    adder = GeArAdder(GeArConfig(16, 4, 4))
    a, b = operands
    result = benchmark(adder.add, a, b)
    assert np.all(np.asarray(result) <= a + b)


def test_corrected_add_throughput(benchmark, operands):
    adder = GeArAdder(GeArConfig(16, 4, 4))
    corrector = ErrorCorrector(adder)
    a, b = operands
    result = benchmark(corrector.add, a, b)
    np.testing.assert_array_equal(result.value, a + b)


def test_error_model_dp_speed(benchmark):
    # The DP must stay fast enough for full design-space sweeps.
    def sweep():
        total = 0.0
        for p in range(1, 56):
            cfg = GeArConfig(64, 2, p, allow_partial=(64 - 2 - p) % 2 != 0)
            total += error_probability(cfg)
        return total

    total = benchmark(sweep)
    assert total > 0


def test_exact_dp_speed(benchmark):
    cfg = GeArConfig(48, 8, 16)
    value = benchmark(error_probability_exact, cfg)
    assert value == pytest.approx(error_probability(cfg), abs=1e-12)


def test_netlist_simulation_throughput(benchmark):
    adder = GeArAdder(GeArConfig(16, 4, 4))
    netlist = adder.build_netlist()
    rng = np.random.default_rng(2)
    a = rng.integers(0, 1 << 16, size=20_000, dtype=np.int64)
    b = rng.integers(0, 1 << 16, size=20_000, dtype=np.int64)
    got = benchmark(simulate_bus, netlist, {"A": a, "B": b}, "S")
    np.testing.assert_array_equal(got, np.asarray(adder.add(a, b)))
