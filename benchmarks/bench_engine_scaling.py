"""Bench (micro): sharded evaluation engine throughput and scaling.

Not a paper artefact — these time the engine's Monte-Carlo hot path at
different worker counts and with a warm shard cache, asserting along the
way the engine's two core guarantees: results are bit-identical at any
``jobs`` value, and a warm cache serves a repeated request with zero
shard executions.
"""

import pytest

from repro.core.gear import GeArAdder, GeArConfig
from repro.engine import Engine, EvalRequest

SAMPLES = 200_000
SEED = 11


@pytest.fixture(scope="module")
def adder():
    return GeArAdder(GeArConfig(16, 4, 4))


@pytest.fixture(scope="module")
def reference_stats(adder):
    result = Engine(jobs=1).evaluate(
        EvalRequest.monte_carlo(adder, SAMPLES, seed=SEED)
    )
    return result.stats


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_engine_monte_carlo_scaling(benchmark, adder, reference_stats, jobs):
    engine = Engine(jobs=jobs)
    result = benchmark(
        engine.evaluate, EvalRequest.monte_carlo(adder, SAMPLES, seed=SEED)
    )
    assert result.stats == reference_stats


def test_engine_warm_cache_throughput(benchmark, adder, reference_stats, tmp_path):
    request = EvalRequest.monte_carlo(adder, SAMPLES, seed=SEED)
    Engine(jobs=1, cache=tmp_path).evaluate(request)

    warm = Engine(jobs=1, cache=tmp_path)
    result = benchmark(warm.evaluate, request)
    assert warm.shards_executed == 0
    assert result.stats == reference_stats


def test_engine_exhaustive_throughput(benchmark, adder):
    small = GeArAdder(GeArConfig(12, 4, 4))
    engine = Engine(jobs=1)
    result = benchmark(
        engine.evaluate, EvalRequest.exhaustive(small)
    )
    assert result.stats.samples == 1 << 24
