"""Bench (motivation): §1's carry-chain rarity claim, quantified.

The paper's premise: "for a 64-bit addition the carry propagation chain of
64 bits is a very rare case".  This bench computes the exact longest-chain
statistics for uniform operands and derives the designer's numbers — how
short a sub-adder may be for a given miss rate.
"""

import numpy as np
import pytest

from repro.analysis.carrychain import (
    chain_coverage_table,
    expected_longest_chain,
    prob_longest_chain_at_most,
    required_chain_for_coverage,
)
from repro.analysis.tables import format_table
from repro.utils.bitvec import longest_carry_chain


def _run():
    rows = []
    for n in (16, 32, 64, 128):
        coverage = chain_coverage_table(n, [4, 8, 12, 16])
        rows.append(
            (
                n,
                f"{expected_longest_chain(n):.2f}",
                f"{coverage[8]:.2e}",
                f"{coverage[16]:.2e}",
                required_chain_for_coverage(n, 1e-2),
                required_chain_for_coverage(n, 1e-4),
            )
        )
    return rows


def test_motivation_carry_chains(benchmark, archive):
    rows = benchmark(_run)
    archive(
        "motivation_chains",
        format_table(
            ["N", "E[longest chain]", "P(chain>8)", "P(chain>16)",
             "L for 1% miss", "L for 0.01% miss"],
            rows,
            title="Motivation — longest carry chain statistics (uniform operands)",
        ),
    )

    by_n = {r[0]: r for r in rows}
    # §1's claim: a full 64-bit chain is essentially impossible.
    assert 1.0 - prob_longest_chain_at_most(64, 63) < 1e-15
    # Expected chains grow ~log2(N): doubling N adds ~1 bit.
    assert float(by_n[32][1]) - float(by_n[16][1]) < 2.0
    # A ~10-bit sub-adder suffices for <1% misses even at 64 bits — the
    # sizing Table IV uses (L = 10 for N = 20).
    assert by_n[64][4] <= 12

    # Cross-check the DP against simulation at N=64.
    rng = np.random.default_rng(0)
    a = rng.integers(0, 1 << 62, size=100_000, dtype=np.int64) << 2
    a |= rng.integers(0, 4, size=100_000, dtype=np.int64)
    b = rng.integers(0, 1 << 62, size=100_000, dtype=np.int64) << 2
    b |= rng.integers(0, 4, size=100_000, dtype=np.int64)
    measured = float(np.mean(longest_carry_chain(a, b, 64) <= 8))
    assert measured == pytest.approx(prob_longest_chain_at_most(64, 8), abs=5e-3)
