"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artefact (table or figure), wraps the
computation in pytest-benchmark for timing, prints the reproduced rows, and
archives them under ``benchmarks/output/`` so EXPERIMENTS.md can quote a
stable copy.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def archive():
    """Fixture: print a reproduced artefact and save it under output/."""

    def _archive(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _archive
