"""Bench (ablation): §3.2 model exactness and input-distribution drift.

Workload: four configurations × five operand distributions × 100 000
samples.  Asserts the reproduction finding that the model is exact for
uniform operands, and quantifies the drift non-uniform data introduces.
"""

from repro.experiments.ablation import (
    render_distribution_sensitivity_ablation,
    run_distribution_sensitivity_ablation,
)


def test_ablation_distribution_sensitivity(benchmark, archive):
    rows = benchmark(run_distribution_sensitivity_ablation)
    archive("ablation_distribution", render_distribution_sensitivity_ablation(rows))

    for row in rows:
        # Finding: Eq. 5-7 equals the first-principles DP (strict configs).
        assert row.model_is_exact_for_uniform
        # Uniform measurement within Monte-Carlo noise of the model.
        assert abs(row.measured["uniform"] - row.model) < 0.01
        # Sparse operands (few propagates) err less than the model predicts;
        # this is the model's real sensitivity, not truncation.
        assert row.measured["sparse(0.25)"] < row.model
        # Gaussian mid-range data behaves roughly uniformly in the low bits
        # but deviates somewhere; record without direction assertion.
        assert 0.0 <= row.measured["gaussian"] <= 1.0
        # Our bitwise extension closes the gap: its prediction lands within
        # Monte-Carlo distance of the measurement on every distribution,
        # including those the uniform model misses by an order of magnitude.
        for name, measured in row.measured.items():
            assert abs(row.bitwise_predicted[name] - measured) < \
                max(0.02, 0.15 * measured), (row.n, row.r, row.p, name)
