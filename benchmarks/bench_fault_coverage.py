"""Bench (extension): stuck-at fault coverage of the adder netlists.

Classic fault simulation over the generated RTL: RCA is irredundant
(100 % stuck-at coverage), while GeAr's overlapping speculative windows
deliberately compute bits that are later discarded — measurable logic
redundancy.  The §3.3 detector observes a substantial share of the
detectable faults for free, which is a nice secondary use of the
error-detection hardware.
"""

from repro.analysis.tables import format_table
from repro.rtl.builders import build_gear, build_gear_corrected, build_rca
from repro.rtl.faults import fault_simulation

VECTORS = 192


def _run():
    designs = {
        "RCA(8)": build_rca(8),
        "GeAr(8,2,2)": build_gear(8, 2, 2),
        "GeAr(12,4,4)": build_gear(12, 4, 4),
        "GeAr(12,4,4)+corr": build_gear_corrected(12, 4, 4),
    }
    rows = []
    for name, netlist in designs.items():
        report = fault_simulation(netlist, vectors=VECTORS, seed=13)
        rows.append(
            {
                "name": name,
                "faults": report.total,
                "coverage": report.coverage,
                "err_obs": report.err_observability,
                "undetected": len(report.undetected),
            }
        )
    return rows


def test_fault_coverage(benchmark, archive):
    rows = benchmark(_run)
    archive(
        "fault_coverage",
        format_table(
            ["design", "faults", "coverage", "ERR observability",
             "undetected"],
            [
                (r["name"], r["faults"], f"{r['coverage']:.4f}",
                 f"{r['err_obs']:.4f}", r["undetected"])
                for r in rows
            ],
            title="Extension — stuck-at fault coverage of generated RTL",
        ),
    )

    by_name = {r["name"]: r for r in rows}
    # RCA is irredundant.
    assert by_name["RCA(8)"]["coverage"] == 1.0
    # GeAr carries redundancy (discarded speculative low bits).
    assert by_name["GeAr(8,2,2)"]["coverage"] < 1.0
    assert by_name["GeAr(12,4,4)"]["coverage"] < 1.0
    # The §3.3 detector observes a meaningful share of detected faults.
    assert by_name["GeAr(8,2,2)"]["err_obs"] > 0.3
    # The correction datapath (muxes held inactive) adds more logic that is
    # unobservable in normal mode — coverage drops further.
    assert by_name["GeAr(12,4,4)+corr"]["coverage"] <= \
        by_name["GeAr(12,4,4)"]["coverage"] + 1e-9
