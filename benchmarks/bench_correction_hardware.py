"""Bench (hardware): the Fig. 5/6 correction circuit, gate level.

Drives the actual correction netlist (muxes + OR gates + forced LSBs +
detector ANDs) through the multi-cycle harness over random operands,
checking it reproduces the behavioural §3.3 corrector cycle-for-cycle, and
measuring the hardware cost the correction muxes add to the datapath.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.correction import ErrorCorrector
from repro.core.gear import GeArAdder, GeArConfig
from repro.rtl.builders import build_gear, build_gear_corrected
from repro.rtl.correction_harness import MultiCycleCorrector
from repro.timing.fpga import characterize_netlist

CONFIGS = [(12, 4, 4), (12, 2, 6), (16, 2, 2)]
SAMPLES = 30_000


def _run():
    rng = np.random.default_rng(11)
    rows = []
    for n, r, p in CONFIGS:
        a = rng.integers(0, 1 << n, SAMPLES, dtype=np.int64)
        b = rng.integers(0, 1 << n, SAMPLES, dtype=np.int64)
        netlist = build_gear_corrected(n, r, p)
        hw = MultiCycleCorrector(netlist).add(a, b)
        sw = ErrorCorrector(GeArAdder(GeArConfig(n, r, p))).add(a, b)
        plain = characterize_netlist(build_gear(n, r, p))
        corrected = characterize_netlist(netlist)
        rows.append(
            {
                "config": (n, r, p),
                "exact": bool(np.array_equal(hw.value, a + b)),
                "cycles_match": bool(np.array_equal(hw.cycles, sw.cycles)),
                "mean_cycles": float(np.mean(hw.cycles)),
                "plain_luts": plain.luts,
                "corrected_luts": corrected.luts,
                "plain_ns": plain.delay_ns,
                "corrected_ns": corrected.delay_ns,
            }
        )
    return rows


def test_correction_hardware(benchmark, archive):
    rows = benchmark(_run)
    archive(
        "correction_hardware",
        format_table(
            ["(N,R,P)", "exact", "cycles==model", "mean cycles",
             "LUTs plain", "LUTs corrected", "ns plain", "ns corrected"],
            [
                (str(r["config"]), r["exact"], r["cycles_match"],
                 f"{r['mean_cycles']:.4f}", r["plain_luts"],
                 r["corrected_luts"], f"{r['plain_ns']:.3f}",
                 f"{r['corrected_ns']:.3f}")
                for r in rows
            ],
            title="Hardware — §3.3 correction circuit (Figs. 5/6), gate level",
        ),
    )

    for r in rows:
        assert r["exact"], r["config"]
        assert r["cycles_match"], r["config"]
        # The correction muxes cost area and a little delay — the overhead
        # the error-control select signal exists to avoid when tolerable.
        assert r["corrected_luts"] >= r["plain_luts"]
        assert r["corrected_ns"] >= r["plain_ns"] - 1e-9
        # Mean cycles ≈ 1 + p_err (k=2) and stays < 2 for these configs.
        assert 1.0 <= r["mean_cycles"] < 2.0
