"""Bench (validation): discrete-event pipeline vs the Table IV formula.

Table IV's runtimes are analytic predictions; this bench runs the actual
stall-on-correct pipeline over large operand streams and compares the
measured cycles-per-addition against the paper's best/average/worst
scenarios for every Table IV GeAr configuration.

Expected outcome (and what the assertions encode): for strict
configurations the measurement sits inside the [best, worst] envelope,
hugging 'best' (most erroneous additions have one bad sub-adder).  For the
*partial* configurations R = 3, 6, 7 the paper's nominal error probability
is conservative (see docs/error_model.md §3), so the measurement may fall
below the analytic 'best' line — but never below the envelope built from
the true (exact-DP) error probability.
"""

from repro.analysis.tables import format_table
from repro.core.error_model import error_probability_exact
from repro.core.gear import GeArAdder, GeArConfig
from repro.timing.pipeline import compare_with_model

OPERATIONS = 120_000
CONFIGS = [(1, 9), (2, 8), (3, 7), (4, 6), (5, 5), (6, 4), (7, 3)]


def _run():
    rows = []
    for r, p in CONFIGS:
        strict = (20 - r - p) % r == 0
        adder = GeArAdder(GeArConfig(20, r, p, allow_partial=not strict))
        cmp = compare_with_model(adder, operations=OPERATIONS, seed=21)
        rows.append({
            "config": (r, p),
            "cmp": cmp,
            "strict": strict,
            "p_model": adder.error_probability(),
            "p_true": error_probability_exact(adder.config),
            "k": adder.config.k,
        })
    return rows


def test_pipeline_validates_table4(benchmark, archive):
    rows = benchmark(_run)
    archive(
        "pipeline_validation",
        format_table(
            ["GeAr (R,P)", "k", "p model", "p true", "measured cyc/op",
             "best", "average", "worst"],
            [
                (str(r["config"]), r["k"], f"{r['p_model']:.6f}",
                 f"{r['p_true']:.6f}",
                 f"{r['cmp'].measured_cycles_per_op:.6f}",
                 f"{r['cmp'].predicted_best:.6f}",
                 f"{r['cmp'].predicted_average:.6f}",
                 f"{r['cmp'].predicted_worst:.6f}")
                for r in rows
            ],
            title="Validation — measured pipeline cost vs Table IV scenarios",
        ),
    )

    for r in rows:
        cmp = r["cmp"]
        sigma = (r["p_model"] * (r["k"] - 1) ** 2 / OPERATIONS) ** 0.5
        # Upper bound always holds: the worst-case scenario is never beaten.
        assert cmp.measured_cycles_per_op <= cmp.predicted_worst + 5 * sigma
        # Lower bound from the *true* error probability (one stall per
        # erroneous addition at minimum).
        true_best = 1.0 + r["p_true"]
        assert cmp.measured_cycles_per_op >= true_best - 5 * sigma
        if r["strict"]:
            # Strict configs: the paper's own 'best' line holds too.
            assert cmp.measured_cycles_per_op >= \
                cmp.predicted_best - 5 * sigma
        else:
            # Partial configs: the paper's model is conservative, so its
            # scenarios over-predict the measured cost.
            assert cmp.measured_cycles_per_op <= cmp.predicted_average
