"""Bench: Table III — analytic vs simulated error probability.

Workload: the paper's four (N, R, P) configurations, 10 000 uniform input
patterns each (§4.4 protocol).  Asserts that the analytic column matches
the paper to its printed precision, and that a warm shard cache serves
the whole table with zero simulation work.
"""

import pytest

from repro.engine import Engine
from repro.experiments.table3 import render_table3, run_table3


def test_table3_error_probability(benchmark, archive):
    rows = benchmark(run_table3)
    archive("table3", render_table3(rows))
    for row in rows:
        assert row.analytic_pct == pytest.approx(row.paper_analytic_pct,
                                                 abs=5e-3)
        # Simulated column consistent with the model at 10k samples.
        assert abs(row.simulated_pct - row.analytic_pct) < 0.5


def test_table3_warm_cache_does_zero_simulation(benchmark, tmp_path):
    cold = Engine(jobs=1, cache=tmp_path)
    reference = run_table3(engine=cold)
    assert cold.shards_executed > 0 and cold.shards_cached == 0

    warm = Engine(jobs=1, cache=tmp_path)
    rows = benchmark(run_table3, engine=warm)
    assert warm.shards_executed == 0, "warm cache must serve every shard"
    assert warm.shards_cached > 0
    for got, want in zip(rows, reference):
        assert got.simulated_pct == want.simulated_pct
