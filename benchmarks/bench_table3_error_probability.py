"""Bench: Table III — analytic vs simulated error probability.

Workload: the paper's four (N, R, P) configurations, 10 000 uniform input
patterns each (§4.4 protocol).  Asserts that the analytic column matches
the paper to its printed precision.
"""

import pytest

from repro.experiments.table3 import render_table3, run_table3


def test_table3_error_probability(benchmark, archive):
    rows = benchmark(run_table3)
    archive("table3", render_table3(rows))
    for row in rows:
        assert row.analytic_pct == pytest.approx(row.paper_analytic_pct,
                                                 abs=5e-3)
        # Simulated column consistent with the model at 10k samples.
        assert abs(row.simulated_pct - row.analytic_pct) < 0.5
