"""Bench: Fig. 9 — predicted frame times for Image Integral / SAD / LPF.

Workload: for each application's (N, L) sizing, predict full-HD frame
times for ACA-I/ACA-II/ETAII/GDA/GeAr/RCA from delay × error probability ×
sub-adder count.  Asserts GeAr's wins and GDA's losses across all three
panels, as the figure shows.
"""

from repro.experiments.fig9 import render_fig9, run_fig9


def test_fig9_app_timing(benchmark, archive):
    panels = benchmark(run_fig9)
    archive("fig9", render_fig9(panels))

    assert set(panels) == {"image_integral", "sad", "lpf"}
    for app, rows in panels.items():
        by_adder = {r.adder: r for r in rows}
        rca = by_adder["RCA"]
        gear = by_adder["GeAr"]
        gda = by_adder["GDA"]

        # GeAr's speculative path is shorter than RCA's full carry chain.
        assert gear.timing.approximate_s < rca.timing.approximate_s
        # GDA's CLA prediction makes it the slowest adder in every panel.
        assert gda.timing.approximate_s == max(
            r.timing.approximate_s for r in rows
        )
        # Error-corrected timings stay ordered best <= average <= worst.
        for r in rows:
            assert r.timing.best_s <= r.timing.average_s <= r.timing.worst_s

    # Wider words (integral, N=20) take longer per addition than narrower
    # ones (LPF, N=12) for the exact adder.
    assert panels["image_integral"][-1].timing.approximate_s > \
        panels["lpf"][-1].timing.approximate_s
