"""Bench (micro): compiled bit-sliced kernel vs the gate interpreter.

Not a paper artefact — this times the two netlist simulators on the
workload the kernel exists for: campaign-style repeated evaluation of a
GeAr N=32 netlist (fault sweeps, conformance sweeps, engine shards),
where the operand set is packed once and the kernel is replayed many
times.  The interpreter walks the gate graph with one boolean array per
net on every replay; the kernel replays straight-line ``uint64`` word
ops over lanes (:mod:`repro.rtl.compile`).

The acceptance floor is a 20x sustained-throughput advantage for the
compiled kernel at N=32.  The CI ``compile-smoke`` job runs
``python benchmarks/bench_compiled_sim.py 10`` — a deliberately lower
floor, since shared runners are slow and noisy; the 20x default is the
claim for dedicated hardware.  The cold single-batch ratio (one packed
run including both transposes vs one interpreter pass) is reported
alongside for context but not gated: pack/unpack amortises away on
campaigns, which is the point.
"""

import time

import numpy as np

from repro.rtl.builders import build_gear
from repro.rtl.compile import compile_netlist, pack_operands
from repro.rtl.sim import simulate

N = 32
R, P = 4, 4
VECTORS = 1 << 18
REPLAYS = 8
SEED = 2015

#: Required sustained compiled-vs-interpreted throughput ratio at N=32.
MIN_SPEEDUP = 20.0


def _workload():
    netlist = build_gear(N, R, P)
    rng = np.random.default_rng(SEED)
    stimulus = {
        bus: rng.integers(0, 1 << width, size=VECTORS, dtype=np.int64)
        for bus, width in netlist.input_buses.items()
    }
    return netlist, stimulus


def _interpreter_campaign_s(netlist, stimulus, repeats: int = 2) -> float:
    """Best-of-``repeats`` wall time for REPLAYS interpreter passes."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(REPLAYS):
            simulate(netlist, stimulus)
        best = min(best, time.perf_counter() - start)
    return best


def _compiled_campaign_s(netlist, stimulus, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time for pack + REPLAYS kernel replays."""
    kernel = compile_netlist(netlist)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        packed = {
            bus: pack_operands(stimulus[bus], width)
            for bus, width in netlist.input_buses.items()
        }
        for _ in range(REPLAYS):
            kernel.run_packed(packed)
        best = min(best, time.perf_counter() - start)
    return best


def _cold_single_batch_ratio(netlist, stimulus) -> float:
    """One end-to-end kernel run (pack + eval + unpack) vs one interpreter
    pass — informational only."""
    kernel = compile_netlist(netlist)
    kernel.run(stimulus)  # warm the ufunc/codegen path
    start = time.perf_counter()
    kernel.run(stimulus)
    compiled_s = time.perf_counter() - start
    start = time.perf_counter()
    simulate(netlist, stimulus)
    interp_s = time.perf_counter() - start
    return interp_s / compiled_s if compiled_s > 0 else float("inf")


def measure_speedup(verbose: bool = False) -> float:
    netlist, stimulus = _workload()
    compiled_s = _compiled_campaign_s(netlist, stimulus)
    interp_s = _interpreter_campaign_s(netlist, stimulus)
    speedup = interp_s / compiled_s if compiled_s > 0 else float("inf")
    if verbose:
        per_vec = interp_s / (REPLAYS * VECTORS)
        print(f"workload: GeAr({N}, {R}, {P}), {VECTORS} vectors x "
              f"{REPLAYS} replays, {netlist.stats()['nets']} nets")
        print(f"interpreter: {interp_s:.3f} s ({per_vec * 1e9:.0f} ns/vector)")
        print(f"compiled   : {compiled_s:.3f} s (pack once, replay packed)")
        print(f"sustained speedup: {speedup:.1f}x (floor: {MIN_SPEEDUP:.0f}x)")
        print(f"cold single-batch: {_cold_single_batch_ratio(netlist, stimulus):.1f}x "
              "(not gated; includes both transposes)")
    return speedup


def test_compiled_campaign_speedup(benchmark):
    benchmark.extra_info["workload"] = (
        f"GeAr({N},{R},{P}), {VECTORS} vectors x {REPLAYS} replays")
    netlist, stimulus = _workload()
    compiled_s = benchmark(_compiled_campaign_s, netlist, stimulus)
    interp_s = _interpreter_campaign_s(netlist, stimulus)
    assert interp_s / compiled_s >= MIN_SPEEDUP


def test_compiled_campaign_bit_equal():
    """The timed artefacts are the same bits: no speed-for-accuracy trade."""
    from repro.rtl.compile import unpack_lanes
    from repro.rtl.sim import simulate_bus

    netlist, stimulus = _workload()
    kernel = compile_netlist(netlist)
    packed = {
        bus: pack_operands(stimulus[bus], width)
        for bus, width in netlist.input_buses.items()
    }
    lanes = kernel.run_packed(packed)
    for bus in netlist.output_buses:
        np.testing.assert_array_equal(
            unpack_lanes(list(lanes[bus]), VECTORS),
            simulate_bus(netlist, stimulus, bus))


if __name__ == "__main__":
    import sys

    floor = float(sys.argv[1]) if len(sys.argv) > 1 else MIN_SPEEDUP
    sys.exit(0 if measure_speedup(verbose=True) >= floor else 1)
