"""Bench: Fig. 1 — design-space comparison for N=16, R ∈ {2, 4}.

Workload: enumerate every reachable (R, P) accuracy configuration per
architecture.  Asserts the paper's counts: ACA-II/ETAII collapse to one
point, GDA to multiples of R, GeAr covers the whole P axis.
"""

from repro.experiments.fig1 import render_fig1, run_fig1


def test_fig1_design_space(benchmark, archive):
    panels = benchmark(run_fig1)
    archive("fig1", render_fig1(panels))

    by_r = {panel.r: panel for panel in panels}

    # Panel (a): R = 2.
    a = by_r[2]
    assert a.counts["GeAr"] == 13
    assert a.counts["GDA"] == 6
    assert a.counts["ACA-II"] == a.counts["ETAII"] == 1
    assert a.counts["ACA-I"] == 0
    assert a.points_per_architecture["GDA"] == [2, 4, 6, 8, 10, 12]
    assert a.points_per_architecture["ACA-II"] == [2]

    # Panel (b): R = 4.
    b = by_r[4]
    assert b.counts["GeAr"] == 11
    assert b.counts["GDA"] == 2
    assert b.points_per_architecture["GDA"] == [4, 8]

    # GeAr strictly dominates everywhere.
    for panel in panels:
        for arch in ("GDA", "ACA-II", "ETAII", "ACA-I"):
            assert panel.counts["GeAr"] > panel.counts[arch]
