"""Bench: Table IV — Image Integral execution-time prediction.

Workload: GeAr R=1..7 at L=10 plus ACA-I/ACA-II/ETAII/GDA/RCA on a full-HD
frame (one addition per pixel).  Asserts the paper's claims: GeAr beats RCA
on approximate *and* corrected timings for low-error configurations, and
GDA is slower than everything.
"""

from repro.experiments.table4 import render_table4, run_table4


def test_table4_execution_time(benchmark, archive):
    rows = benchmark(run_table4)
    archive("table4", render_table4(rows))

    by_name = {r.name: r for r in rows}
    rca = by_name["RCA"]

    # Every GeAr configuration beats RCA on approximate time (shorter L).
    for row in rows:
        if row.name.startswith("GeAr"):
            assert row.timing.approximate_s < rca.timing.approximate_s

    # Low-error GeAr configurations beat RCA even with worst-case recovery
    # (the italic cells of Table IV).
    assert by_name["GeAr(1,9)"].timing.worst_s < rca.timing.approximate_s
    assert by_name["GeAr(2,8)"].timing.worst_s < rca.timing.approximate_s

    # GDA is the only family slower than RCA (§4.2).
    for name in ("GDA(1,9)", "GDA(2,8)", "GDA(5,5)"):
        assert by_name[name].timing.approximate_s > rca.timing.approximate_s

    # Feeding the paper's own delay column through our timing model must
    # reproduce its printed times (checked digit-for-digit in unit tests).
    for row in rows:
        if row.paper_timing is not None:
            assert row.paper_timing.worst_s >= row.paper_timing.best_s
