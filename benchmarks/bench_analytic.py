"""Bench (micro): analytic error-PMF backend vs Monte-Carlo sampling.

Not a paper artefact — this times the two evaluation backends on the
same workload: every GeAr configuration of a 32-bit datapath at R in
{4, 8}, error statistics per configuration.  The sampling column draws
10^5 operand pairs per configuration; the analytic column solves the
exact PMF.  The acceptance floor is a 100x latency advantage for the
analytic backend, checked here and in the CI ``analytic-smoke`` job via
``python benchmarks/bench_analytic.py``.
"""

import time

import pytest

from repro.core.configspace import enumerate_configs
from repro.core.gear import GeArAdder
from repro.engine import Engine, EvalRequest

N = 32
R_VALUES = (4, 8)
SAMPLES = 100_000
SEED = 2015

#: Required analytic-vs-sampled latency ratio on the sweep workload.
MIN_SPEEDUP = 100.0


def _sweep_adders():
    adders = []
    for r in R_VALUES:
        for cfg in enumerate_configs(N, r=r, allow_partial=True):
            adders.append(GeArAdder(cfg))
    return adders


def _run_backend(backend: str, adders=None, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall time to evaluate the sweep on one backend.

    The engine result cache is disabled, so every repetition re-computes
    the statistics end to end; internal warm state (compiled analytic
    plans, segment matrices) persists across repetitions, so the minimum
    is the steady-state latency free of one-off compilation and import
    noise.
    """
    if adders is None:
        adders = _sweep_adders()
    engine = Engine(jobs=1)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for adder in adders:
            if backend == "analytic":
                request = EvalRequest.exhaustive(adder, backend="analytic")
            else:
                request = EvalRequest.monte_carlo(adder, SAMPLES, seed=SEED)
            engine.evaluate(request)
        best = min(best, time.perf_counter() - start)
    return best


def measure_speedup(verbose: bool = False) -> float:
    adders = _sweep_adders()
    analytic_s = _run_backend("analytic", adders, repeats=3)
    sampled_s = _run_backend("sampling", adders, repeats=2)
    speedup = sampled_s / analytic_s if analytic_s > 0 else float("inf")
    if verbose:
        print(f"workload: {len(adders)} GeAr configs, N={N}, R in {R_VALUES}")
        print(f"sampling backend ({SAMPLES} samples/config): {sampled_s:.3f} s")
        print(f"analytic backend (exact PMF)               : {analytic_s:.3f} s")
        print(f"speedup: {speedup:.0f}x (floor: {MIN_SPEEDUP:.0f}x)")
    return speedup


def test_analytic_backend_speedup(benchmark):
    benchmark.extra_info["workload"] = f"N={N}, R={R_VALUES}, {SAMPLES} samples"
    adders = _sweep_adders()
    analytic_s = benchmark(_run_backend, "analytic", adders)
    sampled_s = _run_backend("sampling", adders)
    assert sampled_s / analytic_s >= MIN_SPEEDUP


def test_analytic_matches_sampling_direction(benchmark):
    """Sanity on the same workload: analytic EP within MC noise of sampled."""
    adder = _sweep_adders()[0]
    engine = Engine(jobs=1)
    exact = benchmark(
        engine.evaluate, EvalRequest.exhaustive(adder, backend="analytic")
    )
    sampled = engine.evaluate(
        EvalRequest.monte_carlo(adder, SAMPLES, seed=SEED))
    # 10^5 samples put the MC estimate within ~0.005 of the exact EP
    assert exact.stats.error_rate == pytest.approx(
        sampled.stats.error_rate, abs=0.01)


if __name__ == "__main__":
    import sys

    sys.exit(0 if measure_speedup(verbose=True) >= MIN_SPEEDUP else 1)
